//! The multi-GPU enactor: one dedicated CPU thread per device, BSP
//! supersteps with framework-managed communication (§III-B, Fig. 1).
//!
//! Per iteration, each device thread:
//!
//! 1. runs the unmodified single-GPU `iteration` on its local input
//!    frontier (compute stream);
//! 2. splits the output frontier into local and remote sub-frontiers,
//!    packages the remote ones with the programmer's associated data, and
//!    pushes each package to its peer (communication stream — the transfer
//!    waits on a compute-stream event, so computation and communication
//!    overlap exactly as with `cudaStreamWaitEvent`);
//! 3. rendezvous; drains its inbox, waits for each package's simulated
//!    arrival, and runs the combine kernel (`Expand_Incoming`), assembling
//!    the next input frontier from the local sub-frontier plus combined
//!    received vertices;
//! 4. ends the superstep: clocks are max-reduced across devices (BSP global
//!    sync), the per-iteration overhead `l` is charged, and convergence is
//!    evaluated (all devices locally done, a primitive-specific global
//!    predicate, or the iteration cap).
//!
//! A device thread that fails (e.g. out of memory, an injected fault, or a
//! panic in problem code) keeps participating in rendezvous so no peer
//! deadlocks; its failure travels through the superstep reduction
//! (`Contribution::aborting` → `GlobalReduce::abort_count`), so every device
//! makes the identical exit decision at the identical superstep and the
//! enact call returns the deterministic root-cause error.

use std::sync::Arc;
use std::time::Instant;

use mgpu_graph::Id;
use mgpu_partition::{DistGraph, SubGraph};
use vgpu::memory::Reservation;
use vgpu::sync::{Contribution, Delivery};
use vgpu::{
    harvest_device_thread, Device, Interconnect, KernelKind, Mailbox, Result, SimSystem, SyncPoint,
    TraceEvent, TraceKind, VgpuError, COMM_STREAM, COMPUTE_STREAM,
};

use crate::alloc::{AllocScheme, FrontierBufs};
use crate::comm::{
    broadcast_package_with, canonicalize_ordered, split_and_package_with, CommStrategy,
    CommTopology, Package, PackagePolicy, SuppressState, WireEncoding,
};
use crate::executor::{assemble_report, post_package, Executor, ExecutorKind};
use crate::governor::{self, Downgrade, GovernorLog, PressurePolicy};
use crate::problem::{MgpuProblem, Wire};
use crate::report::{CommReduction, EnactReport, SuperstepTrace};
use crate::resilience::{
    guard, CheckpointSink, GlobalCheckpoint, RecoveryCounters, RecoveryLog, RecoveryPolicy,
};

/// Per-enact configuration overrides.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnactConfig {
    /// Override the primitive's allocation scheme (Fig. 3 sweeps this).
    pub alloc_scheme: Option<AllocScheme>,
    /// Override the primitive's communication strategy.
    pub comm: Option<CommStrategy>,
    /// Override the primitive's iteration cap.
    pub max_iterations: Option<usize>,
    /// Host threads for kernel bodies on every device (default: the
    /// `MGPU_KERNEL_THREADS` env var, else available parallelism). Purely a
    /// wall-clock knob — simulated time and BSP counters are identical at
    /// every value (see `vgpu::par`).
    pub kernel_threads: Option<usize>,
    /// Recovery policy (retries, checkpoints, straggler timeout). The
    /// default is fully off and adds zero simulated-time overhead.
    pub recovery: RecoveryPolicy,
    /// Memory-pressure governor policy ([`crate::governor`]). The default is
    /// fully off: no admission estimate, no downgrades, no spill/chunking —
    /// every OOM propagates exactly as before.
    pub pressure: PressurePolicy,
    /// Broadcast routing topology. The default `Direct` is the historical
    /// n×(n−1) fan-out; `Butterfly` stages broadcast supersteps of monotone
    /// primitives through a ⌈log₂ n⌉-stage dissemination exchange.
    pub comm_topology: CommTopology,
    /// Wire-encoding policy for packages. The default `Legacy` keeps the
    /// historical accounting-only behaviour bit-identical; other values
    /// materialize real encoded bytes and charge their true size.
    pub wire_encoding: WireEncoding,
    /// Enable monotone send suppression (only effective when the primitive
    /// declares `monotone()`): provably dominated messages are dropped
    /// before packaging. Off by default.
    pub suppression: bool,
    /// Record a structured [`crate::trace::Trace`] of the run (every kernel,
    /// send/receive, barrier, retry, spill, collective stage and checkpoint
    /// as a typed span) into `EnactReport::trace`. Off by default and free
    /// when off: no allocation and no clock perturbation — `same_simulation`
    /// holds between traced and untraced runs.
    pub tracing: bool,
}

/// The wire-volume knobs a device thread needs, extracted from the config.
#[derive(Debug, Clone, Copy)]
struct CommKnobs {
    topology: CommTopology,
    encoding: WireEncoding,
    suppression: bool,
}

struct PerGpu<V: Id, S> {
    state: S,
    bufs: FrontierBufs<V>,
    /// Keeps the subgraph topology charged against the device pool for the
    /// runner's lifetime.
    _topology: Reservation,
}

/// A primitive bound to a partitioned graph on a system: initialize once,
/// enact many times (the paper's `Init` / `Reset`+`Enact` split).
pub struct Runner<'g, V: Id, O: Id, P: MgpuProblem<V, O>> {
    system: SimSystem,
    dist: &'g DistGraph<V, O>,
    problem: P,
    config: EnactConfig,
    per_gpu: Vec<PerGpu<V, P::State>>,
    /// Admission-control decisions taken at bind time (plus any downgrades a
    /// driver recorded via [`Runner::note_downgrade`]); folded into every
    /// enact's report.
    admission: GovernorLog,
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O>> Runner<'g, V, O, P> {
    /// Bind `problem` to `dist` on `system`: reserves each subgraph's
    /// topology in device memory, initializes per-GPU state and allocates
    /// the scheme-managed frontier buffers.
    pub fn new(
        mut system: SimSystem,
        dist: &'g DistGraph<V, O>,
        problem: P,
        config: EnactConfig,
    ) -> Result<Self> {
        assert_eq!(
            system.n_devices(),
            dist.n_parts,
            "system device count must match partition count"
        );
        let base_scheme = config.alloc_scheme.unwrap_or_else(|| problem.alloc_scheme());
        let pressure = config.pressure;
        let comm = config.comm.unwrap_or_else(|| problem.comm());
        let host_link = system.interconnect.host_link();
        let mut admission = GovernorLog::default();
        // Id-width bandwidth factor (Table V): baseline is 32-bit vertices
        // with 32-bit offsets; wider ids read proportionally more per edge.
        let width_factor = (V::BYTES as f64 + O::BYTES as f64 / 4.0) / 5.0;
        let mut per_gpu = Vec::with_capacity(dist.n_parts);
        for (dev, sub) in system.devices.iter_mut().zip(dist.parts.iter()) {
            dev.set_width_factor(width_factor);
            if let Some(t) = config.kernel_threads {
                dev.set_kernel_threads(t);
            }
            // ---- admission control: walk the scheme down the downgrade
            // chain until the pre-flight estimate fits under the soft
            // watermark; a floor scheme past the hard watermark is refused
            // with a typed OOM before anything is allocated.
            let mut scheme = base_scheme;
            if pressure.enabled {
                let capacity = dev.pool().capacity();
                let budget = (capacity as f64 * pressure.soft_watermark) as u64;
                let estimate = |scheme| {
                    governor::estimate_footprint(
                        scheme,
                        comm,
                        dist.n_parts,
                        sub.n_vertices(),
                        sub.n_edges(),
                        sub.topology_bytes(),
                        problem.state_bytes_per_vertex(),
                        V::BYTES,
                        <P::Msg as Wire>::BYTES,
                    )
                    .total()
                };
                let mut est = estimate(scheme);
                while est > budget {
                    match governor::downgrade_scheme(scheme) {
                        Some(next) => {
                            admission.downgrades.push(Downgrade {
                                device: Some(dev.id()),
                                kind: "alloc-scheme",
                                from: scheme.label(),
                                to: next.label(),
                                estimated_bytes: est,
                                budget_bytes: budget,
                            });
                            scheme = next;
                            est = estimate(scheme);
                        }
                        None => {
                            if est > capacity {
                                return Err(VgpuError::OutOfMemory {
                                    device: dev.id(),
                                    requested: est,
                                    live: dev.pool().live(),
                                    capacity,
                                });
                            }
                            break; // between watermarks at the floor: admit
                        }
                    }
                }
            }
            let bytes = sub.topology_bytes();
            let topology = dev.pool().reserve_external(bytes)?;
            // charge the H2D copy of the graph at memory bandwidth
            let cost = dev.profile().local_copy_us(bytes);
            dev.charge(COMPUTE_STREAM, cost, 0.0)?;
            let state = problem.init(dev, sub)?;
            let bufs = FrontierBufs::new(dev, scheme, sub.n_vertices(), sub.n_edges())?
                .with_pressure(pressure, host_link);
            per_gpu.push(PerGpu { state, bufs, _topology: topology });
        }
        Ok(Runner { system, dist, problem, config, per_gpu, admission })
    }

    /// Record a downgrade decision a higher layer took before (re)binding —
    /// e.g. a driver that re-partitioned `duplicate-all → duplicate-1-hop`
    /// or dropped a broadcast override after an admission refusal. It shows
    /// up in every subsequent report's governor log.
    pub fn note_downgrade(&mut self, d: Downgrade) {
        self.admission.downgrades.push(d);
    }

    /// The allocation scheme in force.
    pub fn scheme(&self) -> AllocScheme {
        self.per_gpu[0].bufs.scheme()
    }

    /// Access the underlying system (for memory / counter inspection).
    pub fn system(&self) -> &SimSystem {
        &self.system
    }

    /// Dissolve the runner, returning the system (per-GPU state and buffer
    /// reservations are dropped — device memory is released).
    pub fn into_system(self) -> SimSystem {
        self.system
    }

    /// Run one traversal from `src` (a *global* vertex id; `None` for
    /// primitives without a source, e.g. PR and CC). Device clocks and
    /// counters are reset so each enact reports an independent measurement.
    pub fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        let sink = CheckpointSink::new(self.dist.n_parts, self.config.recovery.checkpoint_interval);
        self.enact_resilient(src, None, &sink).0
    }

    /// [`Self::enact`] with explicit recovery plumbing: optionally resume
    /// from a [`GlobalCheckpoint`] and offer new checkpoints into `sink`.
    /// Returns the attempt's [`RecoveryLog`] alongside the result so a
    /// driver ([`crate::resilience::ResilientRunner`]) can account for
    /// failed attempts too.
    pub fn enact_resilient(
        &mut self,
        src: Option<V>,
        resume: Option<&GlobalCheckpoint<V>>,
        sink: &CheckpointSink<V>,
    ) -> (Result<EnactReport>, RecoveryLog) {
        self.system.reset_clocks();
        if self.config.tracing {
            // Fresh trace per enact, superstep cursor positioned so resumed
            // attempts stamp absolute superstep numbers. When tracing is off
            // the timelines are left untouched — a caller may still drive
            // them manually (see `examples/profile_trace.rs`).
            let resume_iter = resume.map_or(0, |ck| ck.iter) as u32;
            for dev in &mut self.system.devices {
                dev.timeline.enable();
                dev.timeline.clear();
                dev.timeline.set_superstep(resume_iter);
            }
            // Downgrades were decided once at bind time, before any trace
            // existed; replay them as instant markers at t=0 so every
            // governor decision in the report is paired with a trace event.
            for d in &self.admission.downgrades {
                let id = d.device.unwrap_or(0).min(self.system.devices.len() - 1);
                let dev = &mut self.system.devices[id];
                dev.timeline.record(TraceEvent {
                    device: id,
                    kind: TraceKind::Downgrade,
                    name: d.kind,
                    bytes: d.estimated_bytes,
                    ..TraceEvent::default()
                });
            }
        }
        // Each enact reports its own mid-run degradation decisions (the
        // admission log persists — it was decided once, at bind).
        for per in &mut self.per_gpu {
            per.bufs.reset_governor();
        }
        let n = self.dist.n_parts;
        let located = src.map(|g| self.dist.locate(g));
        let sync = SyncPoint::new(n);
        // Packages travel as `Arc`s: a broadcast to n−1 peers posts n−1
        // pointers to one package, not n−1 deep copies (the wire cost is
        // still charged per peer — the copies that disappear are host-side).
        let mailbox: Mailbox<Arc<Package<V, P::Msg>>> =
            Mailbox::with_faults(n, self.system.fault_injector());
        let comm = self.config.comm;
        let knobs = CommKnobs {
            topology: self.config.comm_topology,
            encoding: self.config.wire_encoding,
            suppression: self.config.suppression,
        };
        let policy = self.config.recovery;
        let rec = RecoveryCounters::default();
        let fired_before = self.system.fault_injector().map_or(0, |inj| inj.fired());
        let max_iterations =
            self.config.max_iterations.unwrap_or_else(|| self.problem.max_iterations());

        let problem = &self.problem;
        let interconnect = std::sync::Arc::clone(&self.system.interconnect);
        let t0 = Instant::now();
        type Outcome = Result<(usize, Vec<SuperstepTrace>, CommReduction)>;
        let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for ((dev, per), sub) in self
                .system
                .devices
                .iter_mut()
                .zip(self.per_gpu.iter_mut())
                .zip(self.dist.parts.iter())
            {
                let src_local = match located {
                    Some((gpu, local)) if gpu == dev.id() => Some(local),
                    _ => None,
                };
                dev.set_retry_policy(policy.max_retries, policy.retry_backoff_us);
                let sync = &sync;
                let mailbox = &mailbox;
                let rec = &rec;
                let interconnect = std::sync::Arc::clone(&interconnect);
                handles.push(scope.spawn(move || {
                    run_gpu(
                        problem,
                        dev,
                        per,
                        sub,
                        &interconnect,
                        sync,
                        mailbox,
                        comm,
                        knobs,
                        max_iterations,
                        &policy,
                        rec,
                        sink,
                        resume,
                        src_local,
                    )
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(gpu, h)| harvest_device_thread(h.join(), gpu))
                .collect()
        });
        let wall_time_us = t0.elapsed().as_secs_f64() * 1e6;

        let fired_after = self.system.fault_injector().map_or(0, |inj| inj.fired());
        let kernel_retries: u64 = self.system.devices.iter().map(|d| d.kernel_retries()).sum();
        let transfer_retries = rec.transfer_retries.load(std::sync::atomic::Ordering::Relaxed);
        let log = RecoveryLog {
            kernel_retries,
            transfer_retries,
            faults_injected: fired_after - fired_before,
            checkpoints_taken: sink.taken(),
            stragglers_detected: rec.stragglers.load(std::sync::atomic::Ordering::Relaxed),
            butterfly_fallbacks: rec.butterfly_fallbacks.load(std::sync::atomic::Ordering::Relaxed),
            backoff_us: (kernel_retries + transfer_retries) as f64 * policy.retry_backoff_us,
            resumed_at: resume.map(|ck| ck.iter),
            ..RecoveryLog::default()
        };

        // Deterministic root-cause selection: the most severe error wins,
        // lowest device id breaking ties (`Aborted` is only a peer echo).
        let mut root: Option<(u8, VgpuError)> = None;
        let mut iters = 0usize;
        let mut history: Vec<SuperstepTrace> = Vec::new();
        let mut comm_acc = CommReduction::default();
        for r in &outcomes {
            match r {
                Ok((i, local_hist, comm_stats)) => {
                    iters = iters.max(*i);
                    comm_acc.merge(comm_stats);
                    if history.len() < local_hist.len() {
                        history.resize(local_hist.len(), SuperstepTrace::default());
                    }
                    for (acc, t) in history.iter_mut().zip(local_hist) {
                        acc.input += t.input;
                        acc.output += t.output;
                        acc.sent += t.sent;
                        acc.combined += t.combined;
                        acc.suppressed += t.suppressed;
                    }
                }
                Err(e) => {
                    let severity = match e {
                        VgpuError::DeviceLost { .. } => 3,
                        VgpuError::Timeout { .. } => 2,
                        VgpuError::Aborted => 0,
                        _ => 1,
                    };
                    if root.as_ref().is_none_or(|(s, _)| severity > *s) {
                        root = Some((severity, e.clone()));
                    }
                }
            }
        }
        if let Some((_, e)) = root {
            return (Err(e), log);
        }

        let governor = {
            let mut gov = self.admission.clone();
            for per in &self.per_gpu {
                gov.absorb(per.bufs.governor());
            }
            gov
        };
        let report = assemble_report(
            &self.system,
            self.problem.name(),
            n,
            iters,
            wall_time_us,
            history,
            log.clone(),
            governor,
            comm_acc,
            self.config.tracing,
        );
        (Ok(report), log)
    }

    /// Access a device's per-GPU primitive state (e.g. to read labels or
    /// ranks after an enact).
    pub fn state(&self, gpu: usize) -> &P::State {
        &self.per_gpu[gpu].state
    }

    /// Read the primitive's per-vertex result words in global vertex order
    /// (see [`MgpuProblem::result_word`]).
    pub fn harvest(&self) -> Vec<u64> {
        (0..self.dist.n_global)
            .map(|g| {
                let (gpu, local) = self.dist.locate(V::from_usize(g));
                self.problem.result_word(&self.per_gpu[gpu].state, local)
            })
            .collect()
    }
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O>> Executor<V> for Runner<'g, V, O, P> {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Bsp
    }

    fn primitive(&self) -> &'static str {
        self.problem.name()
    }

    fn n_devices(&self) -> usize {
        self.dist.n_parts
    }

    fn recovery_policy(&self) -> RecoveryPolicy {
        self.config.recovery
    }

    fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        Runner::enact(self, src)
    }

    fn harvest(&self) -> Vec<u64> {
        Runner::harvest(self)
    }
}

/// The per-device control loop (the `BFSThread` + `Iteration_Loop` of
/// Appendix A).
///
/// Failure protocol: a device that fails *keeps participating in every
/// rendezvous* with its work skipped, and raises `Contribution::aborting` at
/// the next superstep reduction. All devices see the identical
/// `abort_count`/`done_count`/timeout information in the shared reduction,
/// so every exit decision is uniform — no device can leave a peer stranded
/// at a barrier, and the exit superstep is a deterministic function of the
/// fault plan.
#[allow(clippy::too_many_arguments)]
fn run_gpu<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    sync: &SyncPoint,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: Option<CommStrategy>,
    knobs: CommKnobs,
    max_iterations: usize,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
    sink: &CheckpointSink<V>,
    resume: Option<&GlobalCheckpoint<V>>,
    src_local: Option<V>,
) -> Result<(usize, Vec<SuperstepTrace>, CommReduction)> {
    let n = sync.n();
    let gpu = dev.id();
    let mut failed = false;
    let mut my_error: Option<VgpuError> = None;

    // ---- wire-volume reduction setup (all inert under the defaults) ----
    let monotone = problem.monotone();
    let order = problem.monotone_order();
    let pkg_policy = PackagePolicy {
        encoding: knobs.encoding,
        monotone,
        uniform_hint: problem.uniform_broadcast_msgs(),
        order,
    };
    // Fresh suppression cache per enact: floors never survive a traversal
    // (a retried or resumed attempt starts from scratch, so a send that was
    // lost with its device can never leave a stale floor behind).
    let mut supp: Option<SuppressState> = (knobs.suppression && monotone && n > 1)
        .then(|| SuppressState::with_order(sub.n_vertices(), order));
    let butterfly = knobs.topology == CommTopology::Butterfly && monotone && n > 1;
    let mut stats = CommReduction::default();

    // Reset: primitive state + initial frontier ("Put tsrc into initial
    // frontier on GPU src_gpu"). The host vector drives the iteration
    // directly; commit_output only establishes device residency (no
    // copy-back — the contents are by construction identical). When
    // resuming, the checkpoint overwrites the freshly reset state and
    // supplies the frontier instead.
    let init = guard(gpu, || -> Result<Vec<V>> {
        let fresh = problem.reset(dev, sub, &mut per.state, src_local)?;
        let input = match resume {
            None => fresh,
            Some(ck) => restore_checkpoint(problem, dev, per, sub, ck)?,
        };
        per.bufs.commit_output(dev, &input)?;
        Ok(input)
    });
    let mut input: Vec<V> = match init {
        Ok(f) => f,
        Err(e) => {
            my_error.get_or_insert(e);
            failed = true;
            Vec::new()
        }
    };

    let mut iter = resume.map_or(0, |ck| ck.iter);
    // History indices are *dense absolute superstep numbers*: a resumed
    // attempt pads the supersteps it skipped with defaults so entry `i`
    // always describes superstep `i` and `history.len() == iterations`,
    // whether or not stages were elided or a checkpoint was replayed.
    let mut history: Vec<SuperstepTrace> = vec![SuperstepTrace::default(); iter];
    loop {
        let mut trace = SuperstepTrace { input: input.len() as u64, ..Default::default() };
        let sent_before = dev.counters.h_vertices;
        let supp_before = supp.as_ref().map_or(0, |s| s.suppressed_vertices);
        // Strategy for this superstep: identical on every GPU because state
        // phases evolve from the shared reduction.
        let comm_k = comm.unwrap_or_else(|| problem.comm_now(&per.state));
        // The butterfly engages only for broadcast supersteps of monotone
        // primitives — a uniform decision (comm_k and the knobs are
        // identical everywhere), so per-superstep barrier counts stay
        // aligned across devices.
        let next_input: Vec<V> = if butterfly && comm_k == CommStrategy::Broadcast {
            butterfly_superstep(
                problem,
                dev,
                per,
                sub,
                interconnect,
                sync,
                mailbox,
                &input,
                iter,
                n,
                policy,
                rec,
                pkg_policy,
                &mut supp,
                &mut stats,
                &mut trace,
                &mut failed,
                &mut my_error,
            )
        } else {
            // ---- compute + split/package/push (Fig. 1's top half) ----
            let local_part: Vec<V> = if !failed {
                match guard(gpu, || {
                    compute_and_send(
                        problem,
                        dev,
                        per,
                        sub,
                        interconnect,
                        mailbox,
                        comm_k,
                        &input,
                        iter,
                        n,
                        policy,
                        rec,
                        pkg_policy,
                        &mut supp,
                        &mut stats,
                    )
                }) {
                    Ok((local, output_len)) => {
                        trace.output = output_len;
                        local
                    }
                    Err(e) => {
                        my_error.get_or_insert(e);
                        failed = true;
                        Vec::new()
                    }
                }
            } else {
                Vec::new()
            };

            // ---- rendezvous: every peer's pushes are posted ----
            sync.barrier(dev.now(), false);

            // ---- combine received sub-frontiers (Fig. 1's bottom half) ----
            if !failed {
                match guard(gpu, || {
                    combine_received(problem, dev, per, sub, mailbox, comm_k, local_part, &mut supp)
                }) {
                    Ok(v) => v,
                    Err(e) => {
                        my_error.get_or_insert(e);
                        failed = true;
                        let _ = mailbox.drain(gpu);
                        Vec::new()
                    }
                }
            } else {
                let _ = mailbox.drain(gpu); // keep inboxes clean for peers
                Vec::new()
            }
        };

        trace.sent = dev.counters.h_vertices - sent_before;
        trace.combined = next_input.len() as u64; // local part + combined adds
        trace.suppressed = supp.as_ref().map_or(0, |s| s.suppressed_vertices) - supp_before;
        history.push(trace);

        // ---- checkpoint offer: before the reduce, so a device that failed
        // this superstep never contributes and the partial stays incomplete
        if !failed && sink.due(iter + 1) && problem.supports_checkpoint() {
            if let Err(e) =
                guard(gpu, || offer_checkpoint(problem, dev, per, sub, sink, &next_input, iter + 1))
            {
                my_error.get_or_insert(e);
                failed = true;
            }
        }

        // ---- superstep boundary: global sync + convergence ----
        let (locally_done, contribution) = if failed {
            (true, Contribution { aborting: true, ..Contribution::default() })
        } else {
            match guard(gpu, || {
                Ok((
                    problem.locally_done(&per.state, &next_input),
                    problem.contribution(&per.state, &next_input),
                ))
            }) {
                Ok(v) => v,
                Err(e) => {
                    my_error.get_or_insert(e);
                    failed = true;
                    (true, Contribution { aborting: true, ..Contribution::default() })
                }
            }
        };
        let my_time = dev.now();
        let reduce = sync.superstep(my_time, locally_done, contribution);
        dev.end_superstep(n, reduce.max_time_us);
        iter += 1;
        if !failed {
            if let Err(e) = guard(gpu, || {
                problem.after_superstep(&mut per.state, &reduce, iter);
                Ok(())
            }) {
                my_error.get_or_insert(e);
                failed = true;
            }
        }

        // ---- uniform straggler decision from the shared reduction ----
        if policy.straggler_timeout_us.is_finite()
            && reduce.max_time_us - reduce.min_time_us > policy.straggler_timeout_us
        {
            if gpu == 0 {
                rec.note_straggler();
            }
            if policy.evict_stragglers {
                // The straggler self-identifies (its barrier time *is* the
                // max, bitwise); everyone exits at this same superstep.
                return Err(if my_time == reduce.max_time_us {
                    VgpuError::Timeout { device: gpu }
                } else {
                    my_error.take().unwrap_or(VgpuError::Aborted)
                });
            }
        }

        if reduce.abort_count > 0 {
            return Err(my_error.take().unwrap_or(VgpuError::Aborted));
        }
        if reduce.done_count == n || problem.globally_done(&reduce, iter) || iter >= max_iterations
        {
            // a failure after this superstep's reduce (in after_superstep)
            // is not yet visible to peers — surface it here
            return match my_error.take() {
                Some(e) => Err(e),
                None => {
                    if let Some(s) = &supp {
                        stats.suppressed_vertices = s.suppressed_vertices;
                        stats.suppressed_bytes = s.suppressed_bytes;
                    }
                    Ok((iter, history, stats))
                }
            };
        }
        input = next_input;
    }
}

/// Encode this device's owned vertices (global-id keyed) and its owned
/// slice of the next frontier, and offer them to the sink. The encode pass
/// is metered as a bulk kernel over the owned set.
fn offer_checkpoint<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    sink: &CheckpointSink<V>,
    next_input: &[V],
    iter: usize,
) -> Result<()> {
    let state = &per.state;
    let words = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        let mut words: Vec<(V, u64)> = Vec::with_capacity(sub.n_local);
        for l in 0..sub.n_vertices() {
            let lv = V::from_usize(l);
            if sub.is_owned(lv) {
                words.push((sub.to_global(lv), problem.checkpoint_word(state, lv)));
            }
        }
        let n = words.len() as u64;
        (words, n)
    })?;
    let frontier: Vec<V> =
        next_input.iter().copied().filter(|&v| sub.is_owned(v)).map(|v| sub.to_global(v)).collect();
    if dev.timeline.is_enabled() {
        let at = dev.stream_time(COMPUTE_STREAM);
        dev.timeline.record(TraceEvent {
            device: dev.id(),
            stream: COMPUTE_STREAM.0,
            kind: TraceKind::Checkpoint,
            name: "checkpoint",
            start_us: at,
            items: words.len() as u64,
            ..TraceEvent::default()
        });
    }
    sink.offer(iter, words, frontier);
    Ok(())
}

/// Overwrite freshly reset state from a checkpoint (restoring owned
/// vertices *and* proxies this device holds) and return the restored local
/// input frontier (the owned slice of the checkpoint frontier).
fn restore_checkpoint<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    ck: &GlobalCheckpoint<V>,
) -> Result<Vec<V>> {
    let state = &mut per.state;
    dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        let mut restored = 0u64;
        for &(g, w) in &ck.words {
            if let Some(l) = sub.from_global(g) {
                problem.restore_word(state, l, w);
                restored += 1;
            }
        }
        ((), restored)
    })?;
    Ok(ck
        .frontier
        .iter()
        .filter_map(|&g| sub.from_global(g))
        .filter(|&l| sub.is_owned(l))
        .collect())
}

/// Record a package arrival as an instant span on the communication stream
/// (no clock effect — the arrival wait has already been applied).
fn record_recv(dev: &mut Device, src: usize, wire_bytes: u64, items: u64) {
    if dev.timeline.is_enabled() {
        let at = dev.stream_time(COMM_STREAM);
        dev.timeline.record(TraceEvent {
            device: dev.id(),
            stream: COMM_STREAM.0,
            kind: TraceKind::Recv,
            name: "recv",
            start_us: at,
            items,
            bytes: wire_bytes,
            peer: src as i64,
            ..TraceEvent::default()
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_and_send<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: CommStrategy,
    input: &[V],
    iter: usize,
    n: usize,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
    pkg_policy: PackagePolicy,
    supp: &mut Option<SuppressState>,
    stats: &mut CommReduction,
) -> Result<(Vec<V>, u64)> {
    let gpu = dev.id();
    let output = problem.iteration(dev, sub, &mut per.state, &mut per.bufs, input, iter)?;
    let output_len = output.len() as u64;

    type Sends<V, M> = Vec<(usize, Arc<Package<V, M>>)>;
    let (local, sends): (Vec<V>, Sends<V, P::Msg>) = if n == 1 {
        (output, Vec::new())
    } else {
        match comm {
            CommStrategy::Selective => {
                let state = &per.state;
                let (local, pkgs) = split_and_package_with(
                    dev,
                    sub,
                    &output,
                    &mut per.bufs.split,
                    |v| problem.package(state, v),
                    pkg_policy,
                    supp.as_mut(),
                    |m| problem.suppression_key(m),
                    |a, b| problem.merge_msgs(a, b),
                )?;
                let sends = pkgs
                    .into_iter()
                    .enumerate()
                    .filter_map(|(j, p)| {
                        p.map(|p| {
                            stats.count_package(p.encoding());
                            (j, Arc::new(p))
                        })
                    })
                    .collect();
                (local, sends)
            }
            CommStrategy::Broadcast => {
                let state = &per.state;
                let pkg = broadcast_package_with(
                    dev,
                    sub,
                    &output,
                    |v| problem.package(state, v),
                    pkg_policy,
                    supp.as_mut(),
                    |m| problem.suppression_key(m),
                    |a, b| problem.merge_msgs(a, b),
                )?;
                // the output frontier itself is the local part — no copy
                let sends = if pkg.is_empty() {
                    Vec::new()
                } else {
                    stats.count_package(pkg.encoding());
                    let pkg = Arc::new(pkg);
                    (0..n).filter(|&j| j != gpu).map(|j| (j, Arc::clone(&pkg))).collect()
                };
                (output, sends)
            }
        }
    };

    // Push packages on the communication stream, which waits for the
    // packaging work on the compute stream (cudaStreamWaitEvent analog).
    if !sends.is_empty() {
        let ready = dev.record_event(COMPUTE_STREAM);
        dev.stream_wait(COMM_STREAM, ready)?;
        for (j, pkg) in sends {
            post_package(dev, interconnect, mailbox, j, pkg, policy, rec)?;
        }
    }
    Ok((local, output_len))
}

#[allow(clippy::too_many_arguments)]
fn combine_received<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: CommStrategy,
    local_part: Vec<V>,
    supp: &mut Option<SuppressState>,
) -> Result<Vec<V>> {
    let gpu = dev.id();
    let mut next = local_part;
    for delivery in mailbox.drain(gpu) {
        dev.stream_wait(COMM_STREAM, delivery.arrival)?;
        let src = delivery.src;
        let pkg = delivery.payload;
        dev.counters.h_bytes_recv += pkg.wire_bytes();
        record_recv(dev, src, pkg.wire_bytes(), pkg.len() as u64);
        let state = &mut per.state;
        // accepted vertices append straight onto the merged frontier — the
        // per-package `added` temporary is gone
        let next_ref = &mut next;
        let supp_ref = &mut *supp;
        dev.kernel(COMM_STREAM, KernelKind::Combine, || {
            let (vs, ms) = pkg.decode();
            for (i, &wire) in vs.iter().enumerate() {
                let v = match comm {
                    CommStrategy::Selective => Some(wire),
                    CommStrategy::Broadcast => sub.from_global(wire),
                };
                if let Some(v) = v {
                    // everything arriving on a broadcast was delivered to
                    // every peer — fold it into the suppression floor
                    if comm == CommStrategy::Broadcast {
                        if let Some(s) = supp_ref.as_mut() {
                            s.observe(v.idx(), problem.suppression_key(&ms[i]));
                        }
                    }
                    if problem.combine(state, v, &ms[i]) {
                        next_ref.push(v);
                    }
                }
            }
            ((), pkg.len() as u64)
        })?;
    }
    // Make the merged frontier resident under the allocation scheme and let
    // the next iteration's compute wait for combine completion.
    per.bufs.commit_output(dev, &next)?;
    let done = dev.record_event(COMM_STREAM);
    dev.stream_wait(COMPUTE_STREAM, done)?;
    Ok(next)
}

/// One butterfly (dissemination) superstep for a broadcast-comm monotone
/// primitive: compute, then ⌈log₂ n⌉ exchange stages, each sending the
/// most recent origin blocks held to peer `(i + 2^k) mod n` as one
/// canonical merged package and combining the symmetric package received
/// from `(i − 2^k) mod n`. Every device walks the identical stage structure
/// and attends every stage barrier, so the superstep count and barrier
/// schedule are deterministic; empty stage packages are elided (the barrier
/// makes "nothing arrived" an unambiguous empty window). A device that
/// fails mid-superstep keeps attending every stage barrier with its work
/// skipped — exactly the failure protocol of the direct path.
///
/// Block accounting (DESIGN.md §10): after stage k each device holds the
/// contiguous ring window of `have` most recent origin blocks ending at its
/// own id. The stage sends the most recent `min(have, n − have)` blocks
/// (rounded up to a whole prefix of held groups; early stages match
/// exactly), which is precisely the window the receiver is missing —
/// redundant blocks from the final-stage round-up are rejected by the
/// monotone combiner.
/// Undelivered stage packages a device is holding between butterfly stages.
type Stash<V, M> = Vec<Delivery<Arc<Package<V, M>>>>;

#[allow(clippy::too_many_arguments)]
fn butterfly_superstep<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    sync: &SyncPoint,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    input: &[V],
    iter: usize,
    n: usize,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
    pkg_policy: PackagePolicy,
    supp: &mut Option<SuppressState>,
    stats: &mut CommReduction,
    trace: &mut SuperstepTrace,
    failed: &mut bool,
    my_error: &mut Option<VgpuError>,
) -> Vec<V> {
    let gpu = dev.id();
    // ---- compute + canonical own block (broadcast: the output frontier
    // itself is the local part) ----
    let (mut next, own) = if !*failed {
        match guard(gpu, || {
            let output = problem.iteration(dev, sub, &mut per.state, &mut per.bufs, input, iter)?;
            let state = &per.state;
            let supp_ref = &mut *supp;
            let own = dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
                let per_vertex = (V::BYTES + <P::Msg as Wire>::BYTES) as u64;
                let mut vs: Vec<V> = Vec::with_capacity(output.len());
                let mut ms: Vec<P::Msg> = Vec::with_capacity(output.len());
                for &v in &output {
                    let m = problem.package(state, v);
                    if let Some(s) = supp_ref.as_mut() {
                        if !s.admit(v.idx(), problem.suppression_key(&m), per_vertex) {
                            continue;
                        }
                    }
                    vs.push(sub.to_global(v));
                    ms.push(m);
                }
                let canon = canonicalize_ordered(
                    vs,
                    ms,
                    pkg_policy.order,
                    &|m| problem.suppression_key(m),
                    &|a, b| problem.merge_msgs(a, b),
                );
                (canon, output.len() as u64)
            })?;
            Ok((output, own))
        }) {
            Ok((output, own)) => {
                trace.output = output.len() as u64;
                (output, own)
            }
            Err(e) => {
                my_error.get_or_insert(e);
                *failed = true;
                (Vec::new(), (Vec::new(), Vec::new()))
            }
        }
    } else {
        (Vec::new(), (Vec::new(), Vec::new()))
    };

    // groups[k] = the block window received at stage k (groups[0] = the own
    // block), newest first; counts are structural and identical on every
    // device, so no origin metadata travels on the wire.
    let mut groups: Vec<(usize, Vec<V>, Vec<P::Msg>)> = vec![(1, own.0, own.1)];
    let mut have = 1usize;
    let mut hop = 1usize; // 2^k
    let mut stash: Stash<V, P::Msg> = Vec::new();
    while have < n {
        let target = have.min(n - have);
        // smallest whole prefix of groups covering ≥ target blocks
        let mut sel = 0usize;
        let mut count = 0usize;
        while count < target {
            count += groups[sel].0;
            sel += 1;
        }
        let dst = (gpu + hop) % n;
        let src = (gpu + n - hop) % n;

        // ---- merge + encode + push (one Split kernel per stage) ----
        // A push whose transient retries are exhausted does not doom the
        // attempt when the policy allows degrading: the device votes for a
        // uniform fall-back to direct broadcast at the stage rendezvous
        // below. Non-transient errors keep the direct path's failure
        // protocol (attend every barrier, abort at the superstep reduce).
        let mut stage_fault = false;
        if !*failed {
            if let Err(e) = guard(gpu, || {
                let merged = dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
                    let total: usize = groups[..sel].iter().map(|g| g.1.len()).sum();
                    let mut vs: Vec<V> = Vec::with_capacity(total);
                    let mut ms: Vec<P::Msg> = Vec::with_capacity(total);
                    for (_, gv, gm) in &groups[..sel] {
                        vs.extend_from_slice(gv);
                        ms.extend(gm.iter().cloned());
                    }
                    let (vs, ms) = canonicalize_ordered(
                        vs,
                        ms,
                        pkg_policy.order,
                        &|m| problem.suppression_key(m),
                        &|a, b| problem.merge_msgs(a, b),
                    );
                    let pkg = Package::encode(
                        vs,
                        ms,
                        pkg_policy.encoding,
                        Some(sub.n_vertices()),
                        pkg_policy.uniform_hint,
                    );
                    (pkg, total as u64)
                })?;
                stats.collective_stages += 1;
                if dev.timeline.is_enabled() {
                    let at = dev.stream_time(COMPUTE_STREAM);
                    dev.timeline.record(TraceEvent {
                        device: dev.id(),
                        stream: COMPUTE_STREAM.0,
                        kind: TraceKind::Stage,
                        name: "butterfly-stage",
                        start_us: at,
                        items: merged.len() as u64,
                        peer: dst as i64,
                        ..TraceEvent::default()
                    });
                }
                // Empty stage packages are elided: the stage barrier below
                // guarantees every posted send is drained by its receiver,
                // so a missing delivery deterministically means an empty
                // window — the same signature a failed sender leaves.
                if merged.is_empty() {
                    return Ok(());
                }
                stats.count_package(merged.encoding());
                let ready = dev.record_event(COMPUTE_STREAM);
                dev.stream_wait(COMM_STREAM, ready)?;
                post_package(dev, interconnect, mailbox, dst, Arc::new(merged), policy, rec)
            }) {
                if policy.fallback_to_direct && policy.is_transient(&e) {
                    stage_fault = true;
                } else {
                    my_error.get_or_insert(e);
                    *failed = true;
                }
            }
        }

        // ---- stage rendezvous: the peer's push is posted. The rendezvous
        // doubles as the fall-back vote: the u64 reduction is identical on
        // every device, so the decision to degrade this superstep to direct
        // broadcast is uniform and costs no extra barrier. ----
        let reduce = sync.superstep(
            dev.now(),
            false,
            Contribution { u64_add: stage_fault as u64, ..Contribution::default() },
        );
        if reduce.u64_sum > 0 {
            if gpu == 0 {
                rec.note_butterfly_fallback();
            }
            return butterfly_fallback(
                problem,
                dev,
                per,
                sub,
                interconnect,
                sync,
                mailbox,
                n,
                policy,
                rec,
                pkg_policy,
                supp,
                stats,
                &groups[0],
                stash,
                next,
                failed,
                my_error,
            );
        }

        // ---- take this stage's package; early arrivals from faster peers
        // wait in the stash, a failed sender contributes an empty window ----
        stash.extend(mailbox.drain(gpu));
        let got = stash.iter().position(|d| d.src == src).map(|i| stash.swap_remove(i));
        let (rvs, rms) = match got {
            Some(delivery) if !*failed => {
                match guard(gpu, || {
                    dev.stream_wait(COMM_STREAM, delivery.arrival)?;
                    let pkg = delivery.payload;
                    dev.counters.h_bytes_recv += pkg.wire_bytes();
                    record_recv(dev, src, pkg.wire_bytes(), pkg.len() as u64);
                    let state = &mut per.state;
                    let next_ref = &mut next;
                    let supp_ref = &mut *supp;
                    let decoded = dev.kernel(COMM_STREAM, KernelKind::Combine, || {
                        let (vs, ms) = pkg.decode();
                        for (i, &wire) in vs.iter().enumerate() {
                            if let Some(v) = sub.from_global(wire) {
                                if let Some(s) = supp_ref.as_mut() {
                                    s.observe(v.idx(), problem.suppression_key(&ms[i]));
                                }
                                if problem.combine(state, v, &ms[i]) {
                                    next_ref.push(v);
                                }
                            }
                        }
                        ((vs.into_owned(), ms.into_owned()), pkg.len() as u64)
                    })?;
                    // the next stage's merge (compute stream) forwards what
                    // this combine decoded
                    let done = dev.record_event(COMM_STREAM);
                    dev.stream_wait(COMPUTE_STREAM, done)?;
                    Ok(decoded)
                }) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        my_error.get_or_insert(e);
                        *failed = true;
                        (Vec::new(), Vec::new())
                    }
                }
            }
            _ => (Vec::new(), Vec::new()),
        };
        groups.push((count, rvs, rms));
        have += count;
        hop <<= 1;
    }

    // ---- commit the merged frontier, as the direct combine path does ----
    if *failed {
        return Vec::new();
    }
    if let Err(e) = guard(gpu, || {
        per.bufs.commit_output(dev, &next)?;
        let done = dev.record_event(COMM_STREAM);
        dev.stream_wait(COMPUTE_STREAM, done)
    }) {
        my_error.get_or_insert(e);
        *failed = true;
        return Vec::new();
    }
    next
}

/// Degraded completion of a butterfly superstep after a mid-stage fault
/// survived its transient retries: every device re-broadcasts its *own*
/// canonical block directly to all peers, then combines everything that
/// arrived — the interrupted stage's packages plus the direct
/// re-broadcasts. Every origin block reaches every device without relying
/// on forwarding, and the monotone combiner rejects whatever the completed
/// stages already applied, so the superstep's result is identical to a
/// fault-free exchange. The degradation costs one extra rendezvous
/// (uniform: every device attends it) and direct-broadcast wire charges on
/// top of the stages already paid — all visible in the trace.
#[allow(clippy::too_many_arguments)]
fn butterfly_fallback<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    sync: &SyncPoint,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    n: usize,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
    pkg_policy: PackagePolicy,
    supp: &mut Option<SuppressState>,
    stats: &mut CommReduction,
    own: &(usize, Vec<V>, Vec<P::Msg>),
    mut stash: Stash<V, P::Msg>,
    mut next: Vec<V>,
    failed: &mut bool,
    my_error: &mut Option<VgpuError>,
) -> Vec<V> {
    let gpu = dev.id();
    // ---- re-encode the own block and push it directly to every peer; a
    // failure here is terminal for the attempt (the resilience layer owns
    // the next level of recovery) ----
    if !*failed {
        if let Err(e) = guard(gpu, || {
            let pkg = dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
                let items = own.1.len() as u64;
                let pkg = Package::encode(
                    own.1.clone(),
                    own.2.clone(),
                    pkg_policy.encoding,
                    Some(sub.n_vertices()),
                    pkg_policy.uniform_hint,
                );
                (pkg, items)
            })?;
            if dev.timeline.is_enabled() {
                let at = dev.stream_time(COMPUTE_STREAM);
                dev.timeline.record(TraceEvent {
                    device: dev.id(),
                    stream: COMPUTE_STREAM.0,
                    kind: TraceKind::Stage,
                    name: "butterfly-fallback",
                    start_us: at,
                    items: pkg.len() as u64,
                    ..TraceEvent::default()
                });
            }
            // empty own blocks are elided exactly as empty stage windows are
            if pkg.is_empty() {
                return Ok(());
            }
            let ready = dev.record_event(COMPUTE_STREAM);
            dev.stream_wait(COMM_STREAM, ready)?;
            let pkg = Arc::new(pkg);
            for peer in 0..n {
                if peer == gpu {
                    continue;
                }
                stats.count_package(pkg.encoding());
                post_package(dev, interconnect, mailbox, peer, Arc::clone(&pkg), policy, rec)?;
            }
            Ok(())
        }) {
            my_error.get_or_insert(e);
            *failed = true;
        }
    }

    // ---- one extra rendezvous: every surviving peer's direct push (and
    // any package from the interrupted stage) is posted ----
    sync.barrier(dev.now(), false);

    // ---- drain & combine; a stable sort by sender keeps combine order
    // independent of thread scheduling (stash entries from one sender were
    // posted in that sender's program order) ----
    stash.extend(mailbox.drain(gpu));
    if *failed {
        return Vec::new();
    }
    stash.sort_by_key(|d| d.src);
    for delivery in stash {
        if let Err(e) = guard(gpu, || {
            dev.stream_wait(COMM_STREAM, delivery.arrival)?;
            let src = delivery.src;
            let pkg = delivery.payload;
            dev.counters.h_bytes_recv += pkg.wire_bytes();
            record_recv(dev, src, pkg.wire_bytes(), pkg.len() as u64);
            let state = &mut per.state;
            let next_ref = &mut next;
            let supp_ref = &mut *supp;
            dev.kernel(COMM_STREAM, KernelKind::Combine, || {
                let (vs, ms) = pkg.decode();
                for (i, &wire) in vs.iter().enumerate() {
                    if let Some(v) = sub.from_global(wire) {
                        if let Some(s) = supp_ref.as_mut() {
                            s.observe(v.idx(), problem.suppression_key(&ms[i]));
                        }
                        if problem.combine(state, v, &ms[i]) {
                            next_ref.push(v);
                        }
                    }
                }
                ((), pkg.len() as u64)
            })?;
            Ok(())
        }) {
            my_error.get_or_insert(e);
            *failed = true;
            return Vec::new();
        }
    }

    // ---- commit the merged frontier, as the stage path does ----
    if let Err(e) = guard(gpu, || {
        per.bufs.commit_output(dev, &next)?;
        let done = dev.record_event(COMM_STREAM);
        dev.stream_wait(COMPUTE_STREAM, done)
    }) {
        my_error.get_or_insert(e);
        *failed = true;
        return Vec::new();
    }
    next
}
