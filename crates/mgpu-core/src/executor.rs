//! The unified executor abstraction over the three enactment engines.
//!
//! Three drivers know how to run an [`crate::MgpuProblem`] on a partitioned
//! graph: the BSP [`crate::enactor::Runner`], the asynchronous
//! (Groute-style) [`crate::async_enactor::AsyncRunner`], and the
//! self-healing [`crate::resilience::ResilientRunner`]. They share the
//! superstep-drive / comm-dispatch / recovery semantics but historically
//! triplicated two hot pieces of machinery — the transient-retry package
//! push and the report assembly — and exposed three unrelated call
//! surfaces, so anything that wanted to drive "a query" (the
//! [`crate::service`] scheduler, the bench harness, a future multi-node
//! driver) had to special-case all three.
//!
//! This module fixes both:
//!
//! * [`Executor`] is the single interface every engine implements: enact a
//!   traversal, harvest the per-vertex result words in global vertex order,
//!   and describe yourself (engine kind, primitive name, device count,
//!   recovery policy). The scheduler targets `Box<dyn Executor<V>>` and
//!   never learns which engine is underneath.
//! * [`post_package`] and [`assemble_report`] are the shared comm-dispatch
//!   and report-assembly bodies. Both enactors call them; the replaced code
//!   paths are bit-identical (same charge order, same counter updates, same
//!   trace spans), which the golden-trace and determinism suites enforce.

use std::sync::Arc;

use mgpu_graph::Id;
use vgpu::{Device, Event, Interconnect, Mailbox, Result, SimSystem, SpanMeta, TraceKind, COMM_STREAM};

use crate::comm::Package;
use crate::governor::GovernorLog;
use crate::problem::Wire;
use crate::report::{CommReduction, DeviceMemStats, EnactReport, SuperstepTrace};
use crate::resilience::{RecoveryCounters, RecoveryLog, RecoveryPolicy};

/// Which enactment engine an [`Executor`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Bulk-synchronous supersteps with deterministic simulated clocks
    /// ([`crate::enactor::Runner`]).
    Bsp,
    /// Asynchronous label-correcting relaxation with distributed
    /// termination detection ([`crate::async_enactor::AsyncRunner`]).
    /// Results converge to the same fixpoint, but simulated time is
    /// scheduling-dependent.
    Async,
    /// BSP with checkpoint/re-home/failover recovery wrapped around it
    /// ([`crate::resilience::ResilientRunner`]).
    Resilient,
}

impl ExecutorKind {
    /// Short label for reports and traces.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorKind::Bsp => "bsp",
            ExecutorKind::Async => "async",
            ExecutorKind::Resilient => "resilient",
        }
    }

    /// Is this engine's *simulated time* a deterministic function of
    /// (graph, config, fault plan) — i.e. may a scheduler assert
    /// [`EnactReport::same_simulation`] against a serial re-run? Async
    /// executors converge to the same result values but not the same
    /// clocks.
    pub fn deterministic_timing(&self) -> bool {
        !matches!(self, ExecutorKind::Async)
    }
}

/// One enactment engine bound to a problem and a partitioned graph: the
/// single interface the [`crate::service`] scheduler (and any other driver)
/// targets.
///
/// The contract every implementation upholds:
///
/// * `enact` runs one traversal to completion and reports it; engines with
///   deterministic timing ([`ExecutorKind::deterministic_timing`]) produce
///   reports that are a pure function of (graph, config, fault plan) —
///   independent of host scheduling, worker threads, and wall clock.
/// * `harvest` returns one result word per *global* vertex, in global
///   vertex order, encoded per [`crate::MgpuProblem::result_word`]. Valid
///   after a successful `enact`.
/// * Recovery, governor, and tracing semantics are those of the underlying
///   engine — the trait adds no behaviour, only a uniform surface.
pub trait Executor<V: Id> {
    /// Which engine this is.
    fn kind(&self) -> ExecutorKind;

    /// The bound primitive's name (as reported in [`EnactReport`]).
    fn primitive(&self) -> &'static str;

    /// Devices this executor drives.
    fn n_devices(&self) -> usize;

    /// The recovery policy in force.
    fn recovery_policy(&self) -> RecoveryPolicy;

    /// Run one traversal from `src` (global vertex id; `None` for
    /// source-less primitives).
    fn enact(&mut self, src: Option<V>) -> Result<EnactReport>;

    /// The per-vertex result words in global vertex order (see
    /// [`crate::MgpuProblem::result_word`]).
    fn harvest(&self) -> Vec<u64>;
}

/// Push one package to `dst` on the communication stream with the
/// transient-retry loop, charging occupancy, wire bytes and the H counters.
/// Shared by the BSP direct fan-out, the butterfly stages, and the async
/// relaxation loop.
///
/// The sender's copy engine is occupied for the bandwidth component; the
/// wire latency only delays arrival at the peer. A transiently failed push
/// re-occupies the link for the full retransmission plus the policy
/// backoff; the injector checks the fault site *before* posting, so a
/// failed send delivered nothing and re-sending cannot duplicate a package.
#[allow(clippy::too_many_arguments)]
pub(crate) fn post_package<V: Id, M: Wire>(
    dev: &mut Device,
    interconnect: &Interconnect,
    mailbox: &Mailbox<Arc<Package<V, M>>>,
    dst: usize,
    pkg: Arc<Package<V, M>>,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
) -> Result<()> {
    let gpu = dev.id();
    let bytes = pkg.wire_bytes();
    let charged = interconnect.charged_bytes(bytes);
    let occupancy = interconnect.occupancy_us(gpu, dst, bytes);
    let send_meta = SpanMeta::new(TraceKind::Send, "send")
        .items(pkg.len() as u64)
        .bytes(charged)
        .h_us(occupancy)
        .peer(dst);
    let mut attempts = 0u32;
    loop {
        // every attempt (including ones whose post fails) occupies the link
        // and counts toward H — the trace mirrors that with one Send span
        // per attempt, a failed one immediately followed by its Retry span
        let sent_at = dev.charge_as(COMM_STREAM, occupancy, 0.0, send_meta)?;
        dev.counters.h_time_us += occupancy;
        let arrived_at = sent_at + interconnect.latency_us(gpu, dst);
        match mailbox.send(gpu, dst, Event::at(arrived_at), Arc::clone(&pkg)) {
            Ok(()) => break,
            Err(e) if attempts < policy.max_retries && policy.is_transient(&e) => {
                attempts += 1;
                rec.note_transfer_retry();
                let meta = SpanMeta::new(TraceKind::Retry, "transfer-retry").peer(dst);
                dev.charge_as(COMM_STREAM, policy.retry_backoff_us, 0.0, meta)?;
            }
            Err(e) => return Err(e),
        }
    }
    dev.counters.h_bytes_sent += charged;
    dev.counters.h_vertices += pkg.len() as u64;
    dev.counters.h_messages += 1;
    Ok(())
}

/// Assemble an [`EnactReport`] from a finished system plus the run-shaped
/// pieces only the engine knows (iterations, history, recovery, governor,
/// comm). Both enactors build their reports through this, so the
/// system-derived fields (`sim_time_us`, counters, memory statistics,
/// trace collection) can never drift apart between engines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    system: &SimSystem,
    primitive: &'static str,
    n_devices: usize,
    iterations: usize,
    wall_time_us: f64,
    history: Vec<SuperstepTrace>,
    recovery: RecoveryLog,
    governor: GovernorLog,
    comm: CommReduction,
    tracing: bool,
) -> EnactReport {
    EnactReport {
        primitive,
        n_devices,
        iterations,
        sim_time_us: system.makespan_us(),
        wall_time_us,
        totals: system.total_counters(),
        per_device: system.devices.iter().map(|d| d.counters).collect(),
        peak_memory_per_device: system.peak_memory_per_device(),
        total_peak_memory: system.total_peak_memory(),
        pool_reallocs: system.devices.iter().map(|d| d.pool().reallocs()).sum(),
        mem_per_device: system.devices.iter().map(|d| DeviceMemStats::of(d.pool())).collect(),
        history,
        recovery,
        governor,
        comm,
        trace: tracing.then(|| crate::trace::Trace::collect(system)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_and_timing() {
        assert_eq!(ExecutorKind::Bsp.label(), "bsp");
        assert_eq!(ExecutorKind::Async.label(), "async");
        assert_eq!(ExecutorKind::Resilient.label(), "resilient");
        assert!(ExecutorKind::Bsp.deterministic_timing());
        assert!(ExecutorKind::Resilient.deterministic_timing());
        assert!(!ExecutorKind::Async.deterministic_timing());
    }
}
