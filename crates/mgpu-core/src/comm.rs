//! Communication strategies: frontier splitting, packaging, and the wire
//! format (§III-C).
//!
//! * **Selective-communicate** — send frontier vertices only to their
//!   hosting GPUs; requires a split pass over the output frontier but moves
//!   the minimum volume. Vertex ids on the wire are *owner-local* ids (the
//!   sender resolves each proxy through the conversion table, so the
//!   receiver indexes its arrays directly).
//! * **Broadcast** — send the whole frontier to every peer; no split needed,
//!   but more volume and more combine work (`C ∈ O((n−1)·|V|)` for DOBFS,
//!   Table I). Vertex ids on the wire are *global* ids.
//!
//! Splitting and packaging are "communication computation" — the `C` term
//! of the paper's cost model — and are metered as [`KernelKind::Split`]
//! launches.
//!
//! # Wire volume reduction (DESIGN.md §10)
//!
//! Three opt-in mechanisms shrink the `H` term without changing results:
//!
//! * **Real encodings** ([`PackageEncoding`]): packages can be materialized
//!   as actual wire bytes — a plain list, a dense bitmap over the broadcast
//!   space, or delta-varint over sorted ids — with `wire_bytes` equal to the
//!   true encoded size. Selected per package by [`WireEncoding`] policy
//!   (smallest wins under `Auto`). The default [`WireEncoding::Legacy`]
//!   keeps the historical *accounting-only* behaviour bit-identical.
//! * **Monotone send suppression** ([`SuppressState`]): for primitives whose
//!   combiner is monotone (min-combine), a per-vertex floor of everything
//!   already pushed to (or observed from) the wire proves that a repeated
//!   message with a key `≥ floor` would be rejected by every receiver's
//!   combiner — so it can be dropped before it is packaged.
//! * **Canonical packages**: under a non-legacy encoding, monotone packages
//!   are sorted by vertex id and deduplicated (keeping the minimum key),
//!   which both enables the sorted encodings and removes intra-package
//!   duplicates a monotone combiner would reject anyway.

use std::borrow::Cow;

use mgpu_graph::Id;
use mgpu_partition::SubGraph;
use vgpu::{Device, KernelKind, Result, COMPUTE_STREAM};

use crate::problem::Wire;

/// Which communication strategy a primitive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommStrategy {
    /// Whole frontier to all peers; wire ids are global.
    Broadcast,
    /// Split per hosting GPU; wire ids are owner-local.
    Selective,
}

/// How broadcast traffic is routed between the devices (`EnactConfig`
/// knob). Orthogonal to [`CommStrategy`]: the topology decides *who talks
/// to whom*, the strategy decides *what is on the wire*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommTopology {
    /// Every sender pushes its package directly to all n−1 peers (the
    /// paper's model; the default).
    #[default]
    Direct,
    /// A ⌈log₂ n⌉-stage butterfly (dissemination) exchange: stage k sends
    /// the union of everything held so far to peer `(i + 2^k) mod n`,
    /// cutting per-link traffic and the latency term. Engaged only for
    /// broadcast supersteps of monotone primitives; other supersteps fall
    /// back to direct.
    Butterfly,
}

/// Wire-encoding policy (`EnactConfig` knob): how packages are turned into
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireEncoding {
    /// Historical behaviour: packages stay in-memory parallel arrays and
    /// `wire_bytes` is an *accounting estimate* (list, or the bitmap bound
    /// for uniform broadcast payloads). Bit-identical to pre-encoding
    /// builds; the default.
    #[default]
    Legacy,
    /// Materialize real bytes, picking the smallest of the three encodings
    /// per package.
    Auto,
    /// Force the list encoding (ids + payloads verbatim).
    List,
    /// Force the bitmap encoding where eligible (uniform payload, sorted
    /// ids, known vertex space), else fall back to list.
    Bitmap,
    /// Force delta-varint where eligible (sorted ids), else fall back to
    /// list.
    DeltaVarint,
}

/// The concrete encoding a package ended up with (reported in the
/// `EnactReport` encoding histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackageEncoding {
    /// `[tag][count × (id, payload)]` — the count is implied by the
    /// package length. Or, under [`WireEncoding::Legacy`], the
    /// un-materialized list accounting.
    List,
    /// `[tag][payload][⌈space/8⌉ bitmap]` — one shared payload, membership
    /// by bit, the bit array running to the end of the package. Requires a
    /// uniform payload and sorted ids within a known vertex space
    /// (broadcast packages).
    Bitmap,
    /// `[tag][varint count][varint first id][varint deltas][payload(s)]` —
    /// LEB128 gaps over sorted ids; uniformity is carried by the tag and a
    /// uniform payload is stored once, else per vertex.
    DeltaVarint,
}

// --- LEB128 varints -------------------------------------------------------

fn varint_len(mut x: u64) -> usize {
    let mut n = 1;
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8 & 0x7f) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let b = buf[*pos];
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

fn write_id<V: Id>(out: &mut Vec<u8>, v: V) {
    let b = (v.idx() as u64).to_le_bytes();
    out.extend_from_slice(&b[..V::BYTES]);
}

fn read_id<V: Id>(buf: &[u8]) -> V {
    let mut b = [0u8; 8];
    b[..V::BYTES].copy_from_slice(&buf[..V::BYTES]);
    V::from_usize(u64::from_le_bytes(b) as usize)
}

// --- packages -------------------------------------------------------------

/// A packaged remote sub-frontier: vertices plus their programmer-specified
/// associated data.
///
/// Depending on the [`WireEncoding`] in force the package either keeps the
/// parallel arrays in memory with an accounting-only `wire_bytes` (legacy),
/// or holds the actual encoded bytes; [`Package::decode`] yields the
/// `(vertices, msgs)` view either way.
#[derive(Debug, Clone)]
pub struct Package<V, M> {
    body: Body<V, M>,
    len: usize,
    /// Wire size in bytes, fixed at packaging time. For legacy packages
    /// this is the historical estimate (selective: `len × (id + payload)`;
    /// broadcast with a *uniform* payload: the cheaper of that and the
    /// dense-bitmap bound `⌈|V|/8⌉ + payload`). For encoded packages it is
    /// the exact byte length of the encoding.
    wire_bytes: u64,
    encoding: PackageEncoding,
}

#[derive(Debug, Clone)]
enum Body<V, M> {
    Plain { vertices: Vec<V>, msgs: Vec<M> },
    Encoded(Vec<u8>),
}

impl<V: Id, M: Wire> Package<V, M> {
    /// A list-encoded package (legacy accounting; nothing materialized).
    pub fn list(vertices: Vec<V>, msgs: Vec<M>) -> Self {
        let wire_bytes = (vertices.len() * (V::BYTES + M::BYTES)) as u64;
        let len = vertices.len();
        Package {
            body: Body::Plain { vertices, msgs },
            len,
            wire_bytes,
            encoding: PackageEncoding::List,
        }
    }

    /// A package with the cheaper of list and bitmap *accounting*, given
    /// the broadcast vertex-space size (legacy behaviour; nothing
    /// materialized). Scans the payload for uniformity.
    pub fn best_encoding(vertices: Vec<V>, msgs: Vec<M>, space: usize) -> Self {
        Self::best_encoding_hinted(vertices, msgs, space, None)
    }

    /// [`Package::best_encoding`] with an optional uniformity hint from the
    /// caller, skipping the O(n) payload scan when the primitive already
    /// knows every message of the superstep carries the same label.
    pub fn best_encoding_hinted(
        vertices: Vec<V>,
        msgs: Vec<M>,
        space: usize,
        uniform_hint: Option<bool>,
    ) -> Self {
        let list = (vertices.len() * (V::BYTES + M::BYTES)) as u64;
        let uniform = uniform_hint.unwrap_or_else(|| msgs.windows(2).all(|w| w[0] == w[1]));
        debug_assert!(
            uniform_hint != Some(true) || msgs.windows(2).all(|w| w[0] == w[1]),
            "uniform_broadcast_msgs hint must be truthful"
        );
        let bitmap = (space as u64).div_ceil(8) + M::BYTES as u64;
        let (wire_bytes, encoding) = if uniform && bitmap < list {
            (bitmap, PackageEncoding::Bitmap)
        } else {
            (list, PackageEncoding::List)
        };
        let len = vertices.len();
        Package { body: Body::Plain { vertices, msgs }, len, wire_bytes, encoding }
    }

    /// Build a package under an encoding policy. `Legacy` keeps the
    /// historical accounting paths; every other choice materializes real
    /// bytes (`Auto` picks the smallest eligible encoding; a forced
    /// encoding that is ineligible falls back to the real list). `space` is
    /// the broadcast vertex-space size when known (enables the bitmap).
    pub fn encode(
        vertices: Vec<V>,
        msgs: Vec<M>,
        choice: WireEncoding,
        space: Option<usize>,
        uniform_hint: Option<bool>,
    ) -> Self {
        debug_assert_eq!(vertices.len(), msgs.len());
        match choice {
            WireEncoding::Legacy => match space {
                Some(s) => Self::best_encoding_hinted(vertices, msgs, s, uniform_hint),
                None => Self::list(vertices, msgs),
            },
            _ => Self::encode_real(vertices, msgs, choice, space, uniform_hint),
        }
    }

    fn encode_real(
        vertices: Vec<V>,
        msgs: Vec<M>,
        choice: WireEncoding,
        space: Option<usize>,
        uniform_hint: Option<bool>,
    ) -> Self {
        let len = vertices.len();
        let ascending = vertices.windows(2).all(|w| w[0].idx() < w[1].idx());
        let uniform = uniform_hint.unwrap_or_else(|| msgs.windows(2).all(|w| w[0] == w[1]));
        debug_assert!(
            uniform_hint != Some(true) || msgs.windows(2).all(|w| w[0] == w[1]),
            "uniform_broadcast_msgs hint must be truthful"
        );
        let list_bytes = (1 + len * (V::BYTES + M::BYTES)) as u64;
        let bitmap_ok = ascending
            && uniform
            && len > 0
            && space.is_some_and(|s| vertices.last().map(|v| v.idx() < s).unwrap_or(false));
        let bitmap_bytes = space.map(|s| (1 + M::BYTES) as u64 + (s as u64).div_ceil(8));
        let delta_bytes = ascending.then(|| {
            let mut b = (1 + varint_len(len as u64)) as u64;
            let mut prev = 0u64;
            for (i, v) in vertices.iter().enumerate() {
                let x = v.idx() as u64;
                b += varint_len(if i == 0 { x } else { x - prev }) as u64;
                prev = x;
            }
            b + if uniform {
                if len > 0 {
                    M::BYTES as u64
                } else {
                    0
                }
            } else {
                (len * M::BYTES) as u64
            }
        });
        let enc = match choice {
            WireEncoding::Bitmap if bitmap_ok => PackageEncoding::Bitmap,
            WireEncoding::DeltaVarint if ascending => PackageEncoding::DeltaVarint,
            WireEncoding::Auto => {
                let mut best = (list_bytes, PackageEncoding::List);
                if let Some(db) = delta_bytes {
                    if db < best.0 {
                        best = (db, PackageEncoding::DeltaVarint);
                    }
                }
                if bitmap_ok {
                    let bb = bitmap_bytes.expect("bitmap_ok implies space");
                    if bb < best.0 {
                        best = (bb, PackageEncoding::Bitmap);
                    }
                }
                best.1
            }
            // forced List, forced-but-ineligible Bitmap/DeltaVarint
            _ => PackageEncoding::List,
        };
        let mut out: Vec<u8> = Vec::new();
        match enc {
            PackageEncoding::List => {
                out.reserve(list_bytes as usize);
                out.push(0);
                for (v, m) in vertices.iter().zip(&msgs) {
                    write_id(&mut out, *v);
                    m.write_to(&mut out);
                }
            }
            PackageEncoding::Bitmap => {
                let s = space.expect("bitmap requires a vertex space");
                out.reserve(bitmap_bytes.unwrap_or(0) as usize);
                out.push(1);
                msgs[0].write_to(&mut out);
                let base = out.len();
                out.resize(base + s.div_ceil(8), 0);
                for v in &vertices {
                    let i = v.idx();
                    out[base + i / 8] |= 1 << (i % 8);
                }
            }
            PackageEncoding::DeltaVarint => {
                out.reserve(delta_bytes.unwrap_or(0) as usize);
                out.push(if uniform { 3 } else { 2 });
                write_varint(&mut out, len as u64);
                let mut prev = 0u64;
                for (i, v) in vertices.iter().enumerate() {
                    let x = v.idx() as u64;
                    write_varint(&mut out, if i == 0 { x } else { x - prev });
                    prev = x;
                }
                if uniform {
                    if let Some(m) = msgs.first() {
                        m.write_to(&mut out);
                    }
                } else {
                    for m in &msgs {
                        m.write_to(&mut out);
                    }
                }
            }
        }
        let wire_bytes = out.len() as u64;
        Package { body: Body::Encoded(out), len, wire_bytes, encoding: enc }
    }

    /// The `(vertices, msgs)` view of the package — borrowed for legacy
    /// (in-memory) packages, decoded from the wire bytes for encoded ones.
    /// Decoding is exact: encoded packages round-trip bit-identically.
    pub fn decode(&self) -> (Cow<'_, [V]>, Cow<'_, [M]>) {
        match &self.body {
            Body::Plain { vertices, msgs } => (Cow::Borrowed(vertices), Cow::Borrowed(msgs)),
            Body::Encoded(bytes) => {
                let (vs, ms) = decode_bytes::<V, M>(bytes);
                (Cow::Owned(vs), Cow::Owned(ms))
            }
        }
    }

    /// The raw encoded bytes, when the package was materialized.
    pub fn encoded_bytes(&self) -> Option<&[u8]> {
        match &self.body {
            Body::Plain { .. } => None,
            Body::Encoded(b) => Some(b),
        }
    }

    /// Size on the wire in bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// The encoding this package carries.
    pub fn encoding(&self) -> PackageEncoding {
        self.encoding
    }

    /// Number of vertices in the package.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the package carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn decode_bytes<V: Id, M: Wire>(b: &[u8]) -> (Vec<V>, Vec<M>) {
    match b[0] {
        0 => {
            let count = (b.len() - 1) / (V::BYTES + M::BYTES);
            let mut vs = Vec::with_capacity(count);
            let mut ms = Vec::with_capacity(count);
            let mut pos = 1;
            for _ in 0..count {
                vs.push(read_id::<V>(&b[pos..]));
                pos += V::BYTES;
                ms.push(M::read_from(&b[pos..]));
                pos += M::BYTES;
            }
            (vs, ms)
        }
        1 => {
            let msg = M::read_from(&b[1..]);
            let bits = &b[1 + M::BYTES..];
            let mut vs = Vec::new();
            for (byte_i, &byte) in bits.iter().enumerate() {
                let mut rest = byte;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    vs.push(V::from_usize(byte_i * 8 + bit));
                    rest &= rest - 1;
                }
            }
            let ms = vec![msg; vs.len()];
            (vs, ms)
        }
        2 | 3 => {
            let uniform = b[0] == 3;
            let mut pos = 1;
            let count = read_varint(b, &mut pos) as usize;
            let mut vs = Vec::with_capacity(count);
            let mut acc = 0u64;
            for i in 0..count {
                let d = read_varint(b, &mut pos);
                acc = if i == 0 { d } else { acc + d };
                vs.push(V::from_usize(acc as usize));
            }
            let ms = if uniform {
                if count > 0 {
                    vec![M::read_from(&b[pos..]); count]
                } else {
                    Vec::new()
                }
            } else {
                let mut ms = Vec::with_capacity(count);
                for _ in 0..count {
                    ms.push(M::read_from(&b[pos..]));
                    pos += M::BYTES;
                }
                ms
            };
            (vs, ms)
        }
        t => unreachable!("unknown package tag {t}"),
    }
}

// --- monotone send suppression --------------------------------------------

/// The partial order a monotone combiner improves under. Suppression and
/// canonicalization are lattice operations; this names which lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonotoneOrder {
    /// Total order on `u64` keys, lower = better (BFS depth, SSSP distance).
    /// The floor is the minimum key sent; duplicates keep the lowest key.
    #[default]
    MinKey,
    /// Bitfield lattice: keys are `u64` bit sets, combined by OR, larger =
    /// better (MS-BFS reached sets). The floor is the union of bits sent; a
    /// message is dominated iff it carries no bit outside the floor.
    /// Duplicates merge by a problem-supplied OR-style merge.
    OrBits,
}

/// Per-device suppression cache for monotone primitives: one floor word per
/// local vertex recording the best key this device has already pushed to —
/// or observed arriving from — the wire. "Best" is lattice-dependent: the
/// minimum key under [`MonotoneOrder::MinKey`], the union of bits under
/// [`MonotoneOrder::OrBits`].
///
/// Soundness (DESIGN.md §10, §14): for a monotone combiner, every
/// receiver's state for vertex `v` is at least as good as the floor
/// (selective: the owner combined all our previous sends; broadcast: every
/// device received everything that contributed to the floor). `combine`
/// accepts only strict improvements, so a message dominated by the floor
/// (key ≥ floor, or no new bits) would be rejected by every receiver —
/// dropping it is observationally equivalent.
#[derive(Debug)]
pub struct SuppressState {
    order: MonotoneOrder,
    floor: Vec<u64>,
    /// Vertices dropped before packaging.
    pub suppressed_vertices: u64,
    /// Wire bytes those vertices would have cost under list accounting.
    pub suppressed_bytes: u64,
}

impl SuppressState {
    /// A fresh min-key cache over `n` local vertices (no floor yet).
    pub fn new(n: usize) -> Self {
        Self::with_order(n, MonotoneOrder::MinKey)
    }

    /// A fresh cache over `n` local vertices for the given lattice. The
    /// empty floor is the lattice bottom: `u64::MAX` for min-key (nothing
    /// sent yet beats any key), `0` for or-bits (no bits sent yet).
    pub fn with_order(n: usize, order: MonotoneOrder) -> Self {
        let empty = match order {
            MonotoneOrder::MinKey => u64::MAX,
            MonotoneOrder::OrBits => 0,
        };
        SuppressState { order, floor: vec![empty; n], suppressed_vertices: 0, suppressed_bytes: 0 }
    }

    /// Clear the floors and counters for a fresh traversal.
    pub fn reset(&mut self) {
        let empty = match self.order {
            MonotoneOrder::MinKey => u64::MAX,
            MonotoneOrder::OrBits => 0,
        };
        self.floor.fill(empty);
        self.suppressed_vertices = 0;
        self.suppressed_bytes = 0;
    }

    /// Should a message with `key` for local vertex `idx` go on the wire?
    /// Records the send (improving the floor) when admitted; counts the
    /// suppression (charging `wire_cost` bytes saved) when not.
    pub fn admit(&mut self, idx: usize, key: u64, wire_cost: u64) -> bool {
        let dominated = match self.order {
            MonotoneOrder::MinKey => key >= self.floor[idx],
            MonotoneOrder::OrBits => key & !self.floor[idx] == 0,
        };
        if dominated {
            self.suppressed_vertices += 1;
            self.suppressed_bytes += wire_cost;
            false
        } else {
            match self.order {
                MonotoneOrder::MinKey => self.floor[idx] = key,
                MonotoneOrder::OrBits => self.floor[idx] |= key,
            }
            true
        }
    }

    /// Fold an observed incoming broadcast key into the floor (everything a
    /// device receives on a broadcast was also received by every peer).
    pub fn observe(&mut self, idx: usize, key: u64) {
        let f = &mut self.floor[idx];
        match self.order {
            MonotoneOrder::MinKey => {
                if key < *f {
                    *f = key;
                }
            }
            MonotoneOrder::OrBits => *f |= key,
        }
    }
}

// --- packaging policy -----------------------------------------------------

/// How the packaging functions should treat a primitive's packages: the
/// wire encoding in force, whether the combiner is monotone (enables
/// canonicalization), and the optional payload-uniformity hint.
#[derive(Debug, Clone, Copy)]
pub struct PackagePolicy {
    /// Encoding policy (from `EnactConfig::wire_encoding`).
    pub encoding: WireEncoding,
    /// `MgpuProblem::monotone()` — the combiner is a min-combine.
    pub monotone: bool,
    /// `MgpuProblem::uniform_broadcast_msgs()` — every broadcast message of
    /// a superstep carries the same payload.
    pub uniform_hint: Option<bool>,
    /// `MgpuProblem::monotone_order()` — which lattice the combiner
    /// improves under (decides suppression floors and duplicate handling).
    pub order: MonotoneOrder,
}

impl PackagePolicy {
    /// The historical behaviour: legacy accounting, no canonicalization.
    pub fn legacy() -> Self {
        PackagePolicy {
            encoding: WireEncoding::Legacy,
            monotone: false,
            uniform_hint: None,
            order: MonotoneOrder::MinKey,
        }
    }
}

impl Default for PackagePolicy {
    fn default() -> Self {
        Self::legacy()
    }
}

/// Sort `(vertex, msg)` pairs by (vertex id, key) and keep only the lowest
/// key per vertex — the canonical form of a monotone package. Exposed for
/// the butterfly stage unions.
pub fn canonicalize_monotone<V: Id, M: Wire>(
    vertices: Vec<V>,
    msgs: Vec<M>,
    key: &impl Fn(&M) -> u64,
) -> (Vec<V>, Vec<M>) {
    let mut pairs: Vec<(V, M)> = vertices.into_iter().zip(msgs).collect();
    pairs.sort_by_key(|(v, m)| (v.idx(), key(m)));
    pairs.dedup_by(|a, b| a.0.idx() == b.0.idx());
    pairs.into_iter().unzip()
}

/// Or-bits sibling of [`canonicalize_monotone`]: sort by vertex id and
/// *merge* duplicate vertices into one message carrying the combined bits
/// (OR has no "lowest key to keep" — the canonical form is the union). The
/// sort is stable and the merge folds left-to-right, so the result is a
/// pure function of the input multiset order.
pub fn canonicalize_or_merge<V: Id, M: Wire>(
    vertices: Vec<V>,
    msgs: Vec<M>,
    merge: &impl Fn(&M, &M) -> M,
) -> (Vec<V>, Vec<M>) {
    let mut pairs: Vec<(V, M)> = vertices.into_iter().zip(msgs).collect();
    pairs.sort_by_key(|(v, _)| v.idx());
    let mut out_v: Vec<V> = Vec::with_capacity(pairs.len());
    let mut out_m: Vec<M> = Vec::with_capacity(pairs.len());
    for (v, m) in pairs {
        match out_v.last() {
            Some(last) if last.idx() == v.idx() => {
                let lm = out_m.last_mut().expect("out_v and out_m move in lockstep");
                *lm = merge(lm, &m);
            }
            _ => {
                out_v.push(v);
                out_m.push(m);
            }
        }
    }
    (out_v, out_m)
}

/// Canonicalize per the policy's lattice: min-keep under `MinKey`, OR-merge
/// under `OrBits`. The shared entry point for the packaging functions and
/// the butterfly stage unions.
pub fn canonicalize_ordered<V: Id, M: Wire>(
    vertices: Vec<V>,
    msgs: Vec<M>,
    order: MonotoneOrder,
    key: &impl Fn(&M) -> u64,
    merge: &impl Fn(&M, &M) -> M,
) -> (Vec<V>, Vec<M>) {
    match order {
        MonotoneOrder::MinKey => canonicalize_monotone(vertices, msgs, key),
        MonotoneOrder::OrBits => canonicalize_or_merge(vertices, msgs, merge),
    }
}

/// What a selective split produces: the local sub-frontier plus one
/// optional package per peer (`None` when nothing goes to that peer).
pub type SplitOutput<V, M> = (Vec<V>, Vec<Option<Package<V, M>>>);

/// Reusable split scratch: the per-peer destination histogram. Owned by the
/// caller (one per device, inside `FrontierBufs`) so the per-iteration split
/// allocates nothing beyond the exact-capacity output buffers.
#[derive(Debug, Default)]
pub struct SplitScratch {
    counts: Vec<usize>,
}

/// Selective split: divide `frontier` (local ids) into the local
/// sub-frontier (owned vertices) and one package per peer holding that
/// peer's vertices as owner-local ids. Metered as one Split kernel over the
/// frontier ("data packaging can be done together with frontier splitting").
///
/// Two passes — count, then scatter — so every output buffer is allocated
/// once at its exact final size; the GPU split kernel does the same
/// (histogram + prefix sum + scatter) to compute output cursors. The charge
/// is one frontier scan, as before: the count pass models the cursor
/// computation that the atomic-throughput `Split` metering already covers.
pub fn split_and_package<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    scratch: &mut SplitScratch,
    packager: impl FnMut(V) -> M,
) -> Result<SplitOutput<V, M>> {
    split_and_package_with(
        dev,
        sub,
        frontier,
        scratch,
        packager,
        PackagePolicy::legacy(),
        None,
        |_| 0,
        |a, _| a.clone(),
    )
}

/// [`split_and_package`] with the wire-volume reduction layer: an encoding
/// policy, an optional suppression cache (keyed by the *sender-local* id and
/// the primitive's suppression key), the key extractor, and the duplicate
/// merge used by or-bits canonicalization (ignored under min-key). The
/// default policy with no cache is byte-for-byte the historical split.
#[allow(clippy::too_many_arguments)]
pub fn split_and_package_with<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    scratch: &mut SplitScratch,
    mut packager: impl FnMut(V) -> M,
    policy: PackagePolicy,
    mut suppress: Option<&mut SuppressState>,
    key: impl Fn(&M) -> u64,
    merge: impl Fn(&M, &M) -> M,
) -> Result<SplitOutput<V, M>> {
    let n_parts = sub.n_parts;
    dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
        // pass 1: destination histogram (slot n_parts counts the local part)
        let counts = &mut scratch.counts;
        counts.clear();
        counts.resize(n_parts + 1, 0);
        for &v in frontier {
            if sub.is_owned(v) {
                counts[n_parts] += 1;
            } else {
                counts[sub.owner(v) as usize] += 1;
            }
        }
        // pass 2: scatter into exact-capacity buffers (an admitted upper
        // bound when suppression is on)
        let mut local = Vec::with_capacity(counts[n_parts]);
        let mut parts: Vec<(Vec<V>, Vec<M>)> = counts[..n_parts]
            .iter()
            .map(|&c| (Vec::with_capacity(c), Vec::with_capacity(c)))
            .collect();
        let per_vertex = (V::BYTES + M::BYTES) as u64;
        for &v in frontier {
            if sub.is_owned(v) {
                local.push(v);
            } else {
                let m = packager(v);
                if let Some(s) = suppress.as_deref_mut() {
                    if !s.admit(v.idx(), key(&m), per_vertex) {
                        continue;
                    }
                }
                let peer = sub.owner(v) as usize;
                parts[peer].0.push(sub.to_owner_local(v));
                parts[peer].1.push(m);
            }
        }
        let canonical = policy.monotone && policy.encoding != WireEncoding::Legacy;
        let pkgs: Vec<Option<Package<V, M>>> = parts
            .into_iter()
            .map(|(vs, ms)| {
                (!vs.is_empty()).then(|| {
                    let (vs, ms) = if canonical {
                        canonicalize_ordered(vs, ms, policy.order, &key, &merge)
                    } else {
                        (vs, ms)
                    };
                    // selective wire ids are owner-local: no shared space for
                    // the bitmap, and the payload is rarely uniform
                    Package::encode(vs, ms, policy.encoding, None, None)
                })
            })
            .collect();
        ((local, pkgs), frontier.len() as u64)
    })
}

/// Broadcast packaging: the whole frontier (as global ids) goes to every
/// peer; the local sub-frontier is the whole frontier — the caller keeps
/// using its own frontier vector, so nothing is copied for the local part.
/// No split pass is needed, only id conversion and data packaging — still
/// one Split-class kernel, but the per-peer loop disappears. The returned
/// package is wrapped in an `Arc` by the sender and fanned out to all peers
/// without further copies.
pub fn broadcast_package<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    packager: impl FnMut(V) -> M,
) -> Result<Package<V, M>> {
    broadcast_package_with(
        dev,
        sub,
        frontier,
        packager,
        PackagePolicy::legacy(),
        None,
        |_| 0,
        |a, _| a.clone(),
    )
}

/// [`broadcast_package`] with the wire-volume reduction layer. Suppression
/// floors are keyed by the sender-local id; the enactor additionally folds
/// *received* broadcast keys into the cache via [`SuppressState::observe`].
#[allow(clippy::too_many_arguments)]
pub fn broadcast_package_with<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    mut packager: impl FnMut(V) -> M,
    policy: PackagePolicy,
    mut suppress: Option<&mut SuppressState>,
    key: impl Fn(&M) -> u64,
    merge: impl Fn(&M, &M) -> M,
) -> Result<Package<V, M>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
        let per_vertex = (V::BYTES + M::BYTES) as u64;
        let mut vertices: Vec<V> = Vec::with_capacity(frontier.len());
        let mut msgs: Vec<M> = Vec::with_capacity(frontier.len());
        for &v in frontier {
            let m = packager(v);
            if let Some(s) = suppress.as_deref_mut() {
                if !s.admit(v.idx(), key(&m), per_vertex) {
                    continue;
                }
            }
            vertices.push(sub.to_global(v));
            msgs.push(m);
        }
        let (vertices, msgs) = if policy.monotone && policy.encoding != WireEncoding::Legacy {
            canonicalize_ordered(vertices, msgs, policy.order, &key, &merge)
        } else {
            (vertices, msgs)
        };
        // broadcast ids live in the global space; the bitmap alternative
        // spans that space
        let pkg = Package::encode(
            vertices,
            msgs,
            policy.encoding,
            Some(sub.n_vertices()),
            policy.uniform_hint,
        );
        (pkg, frontier.len() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    fn cycle6(dup: Duplication) -> DistGraph<u32, u64> {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(6, edges, None));
        DistGraph::build(&g, vec![0, 0, 0, 1, 1, 1], 2, dup)
    }

    #[test]
    fn selective_split_separates_owned_and_remote_dup_all() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        // GPU0's frontier holds owned {1,2} and remote {3,5}
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package(&mut dev, &dg.parts[0], &[1, 2, 3, 5], &mut scratch, |v| v * 10)
                .unwrap();
        assert_eq!(local, vec![1, 2]);
        assert!(pkgs[0].is_none(), "nothing to self");
        let p1 = pkgs[1].as_ref().unwrap();
        let (vs, ms) = p1.decode();
        assert_eq!(vs.as_ref(), &[3, 5], "dup-all wire ids are global ids");
        assert_eq!(ms.as_ref(), &[30, 50]);
        assert_eq!(p1.wire_bytes(), 2 * 8);
        assert_eq!(dev.counters.c_items, 4, "split is communication computation");
    }

    #[test]
    fn selective_split_converts_proxies_to_owner_local_ids_one_hop() {
        let dg = cycle6(Duplication::OneHop);
        let mut dev = Device::new(0, HardwareProfile::k40());
        // On GPU0: locals 0..3 owned; proxy 3 = global 3 (owner-local 0),
        // proxy 4 = global 5 (owner-local 2)
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package(&mut dev, &dg.parts[0], &[2, 3, 4], &mut scratch, |v| v).unwrap();
        assert_eq!(local, vec![2]);
        let p1 = pkgs[1].as_ref().unwrap();
        let (vs, ms) = p1.decode();
        assert_eq!(vs.as_ref(), &[0, 2], "owner-local ids on the wire");
        assert_eq!(ms.as_ref(), &[3, 4], "packager saw sender-local ids");
    }

    #[test]
    fn broadcast_keeps_whole_frontier_local_and_packages_global_ids() {
        let dg = cycle6(Duplication::OneHop);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let frontier = [2u32, 4];
        let pkg = broadcast_package(&mut dev, &dg.parts[0], &frontier, |_| ()).unwrap();
        // the caller's own frontier *is* the local part — nothing is copied
        let (vs, _) = pkg.decode();
        assert_eq!(vs.as_ref(), &[2, 5], "local 4 is global 5");
        assert_eq!(
            pkg.wire_bytes(),
            1,
            "unit messages are uniform: the 6-vertex bitmap (1 byte) beats the 8-byte list"
        );
        assert_eq!(pkg.encoding(), PackageEncoding::Bitmap);
    }

    #[test]
    fn empty_frontier_produces_no_packages() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package::<u32, u64, ()>(&mut dev, &dg.parts[0], &[], &mut scratch, |_| ())
                .unwrap();
        assert!(local.is_empty());
        assert!(pkgs.iter().all(Option::is_none));
    }

    #[test]
    fn split_scratch_is_reusable_across_iterations() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        for frontier in [vec![1u32, 3, 5], vec![0, 2], vec![4], vec![]] {
            let (local, pkgs) =
                split_and_package(&mut dev, &dg.parts[0], &frontier, &mut scratch, |v| v).unwrap();
            let total: usize = local.len() + pkgs.iter().flatten().map(Package::len).sum::<usize>();
            assert_eq!(total, frontier.len(), "split conserves the frontier");
        }
    }

    #[test]
    fn suppression_drops_dominated_resends_in_split() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        let mut supp = SuppressState::new(dg.parts[0].n_vertices());
        let policy = PackagePolicy { monotone: true, ..PackagePolicy::legacy() };
        // first send of {3, 5} establishes the floor
        let (_, pkgs) = split_and_package_with(
            &mut dev,
            &dg.parts[0],
            &[3, 5],
            &mut scratch,
            |v| v * 10,
            policy,
            Some(&mut supp),
            |m| u64::from(*m),
            |a, _| *a,
        )
        .unwrap();
        assert_eq!(pkgs[1].as_ref().unwrap().len(), 2);
        assert_eq!(supp.suppressed_vertices, 0);
        // an equal re-send is provably rejected by the remote combiner
        let (_, pkgs) = split_and_package_with(
            &mut dev,
            &dg.parts[0],
            &[3, 5],
            &mut scratch,
            |v| v * 10,
            policy,
            Some(&mut supp),
            |m| u64::from(*m),
            |a, _| *a,
        )
        .unwrap();
        assert!(pkgs.iter().all(Option::is_none), "dominated sends are dropped");
        assert_eq!(supp.suppressed_vertices, 2);
        assert_eq!(supp.suppressed_bytes, 2 * 8);
        // a strictly better key goes through again
        let (_, pkgs) = split_and_package_with(
            &mut dev,
            &dg.parts[0],
            &[3],
            &mut scratch,
            |_| 1u32,
            policy,
            Some(&mut supp),
            |m| u64::from(*m),
            |a, _| *a,
        )
        .unwrap();
        assert_eq!(pkgs[1].as_ref().unwrap().len(), 1);
    }

    #[test]
    fn broadcast_suppression_observes_incoming_floors() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut supp = SuppressState::new(dg.parts[0].n_vertices());
        let policy = PackagePolicy { monotone: true, ..PackagePolicy::legacy() };
        // a peer broadcast delivered key 5 for vertex 2 to everyone
        supp.observe(2, 5);
        let pkg = broadcast_package_with(
            &mut dev,
            &dg.parts[0],
            &[2u32, 4],
            |_| 5u32,
            policy,
            Some(&mut supp),
            |m| u64::from(*m),
            |a, _| *a,
        )
        .unwrap();
        let (vs, _) = pkg.decode();
        assert_eq!(vs.as_ref(), &[4], "vertex 2's key 5 cannot improve any peer");
        assert_eq!(supp.suppressed_vertices, 1);
    }

    #[test]
    fn orbits_floor_admits_only_new_bits() {
        let mut supp = SuppressState::with_order(4, MonotoneOrder::OrBits);
        assert!(supp.admit(0, 0b0011, 8), "fresh bits go through");
        assert!(!supp.admit(0, 0b0001, 8), "subset of the floor is dominated");
        assert!(supp.admit(0, 0b0101, 8), "one new bit is enough");
        assert!(!supp.admit(0, 0b0111, 8), "floor is now the union 0b0111");
        assert_eq!(supp.suppressed_vertices, 2);
        assert_eq!(supp.suppressed_bytes, 2 * 8);
        // observed broadcast bits fold into the floor by union
        supp.observe(1, 0b1000);
        assert!(!supp.admit(1, 0b1000, 8));
        supp.reset();
        assert!(supp.admit(0, 0b0001, 8), "reset returns the floor to bottom");
    }

    #[test]
    fn or_merge_canonicalization_unions_duplicates() {
        let (vs, ms) = canonicalize_or_merge(
            vec![7u32, 2, 7, 2, 5],
            vec![0b001u64, 0b010, 0b100, 0b100, 0b1],
            &|a, b| a | b,
        );
        assert_eq!(vs, vec![2, 5, 7], "sorted by vertex id, one entry each");
        assert_eq!(ms, vec![0b110, 0b1, 0b101], "duplicate payloads merged by OR");
    }
}

#[cfg(test)]
mod encoding_tests {
    use super::*;

    #[test]
    fn uniform_broadcast_payload_uses_bitmap_when_dense() {
        // 1000 vertices of a 4096-vertex space, all carrying label 7:
        // list = 1000×8 = 8000 B; bitmap = 4096/8 + 4 = 516 B
        let vs: Vec<u32> = (0..1000).collect();
        let ms = vec![7u32; 1000];
        let pkg = Package::best_encoding(vs, ms, 4096);
        assert_eq!(pkg.wire_bytes(), 516);
        assert_eq!(pkg.encoding(), PackageEncoding::Bitmap);
    }

    #[test]
    fn sparse_uniform_broadcast_keeps_list_encoding() {
        // 3 vertices of a huge space: list wins
        let pkg = Package::best_encoding(vec![1u32, 2, 3], vec![7u32; 3], 1 << 20);
        assert_eq!(pkg.wire_bytes(), 3 * 8);
        assert_eq!(pkg.encoding(), PackageEncoding::List);
    }

    #[test]
    fn non_uniform_payload_cannot_use_bitmap() {
        let vs: Vec<u32> = (0..1000).collect();
        let ms: Vec<u32> = (0..1000).collect(); // distinct values
        let pkg = Package::best_encoding(vs, ms, 4096);
        assert_eq!(pkg.wire_bytes(), 1000 * 8);
    }

    #[test]
    fn empty_uniform_package_is_free_under_list_encoding() {
        let pkg = Package::<u32, u32>::best_encoding(vec![], vec![], 4096);
        assert_eq!(pkg.wire_bytes(), 0);
    }

    #[test]
    fn varints_round_trip_across_widths() {
        for x in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, x);
            assert_eq!(out.len(), varint_len(x));
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), x);
            assert_eq!(pos, out.len());
        }
    }

    fn round_trip(pkg: &Package<u32, u32>, vs: &[u32], ms: &[u32]) {
        let (dv, dm) = pkg.decode();
        assert_eq!(dv.as_ref(), vs);
        assert_eq!(dm.as_ref(), ms);
        assert_eq!(pkg.len(), vs.len());
        assert_eq!(
            pkg.wire_bytes(),
            pkg.encoded_bytes().expect("materialized").len() as u64,
            "wire_bytes is the true encoded size"
        );
    }

    #[test]
    fn real_list_encoding_round_trips() {
        let vs = vec![9u32, 3, 7, 3];
        let ms = vec![1u32, 2, 3, 4];
        let pkg = Package::encode(vs.clone(), ms.clone(), WireEncoding::List, None, None);
        assert_eq!(pkg.encoding(), PackageEncoding::List);
        round_trip(&pkg, &vs, &ms);
    }

    #[test]
    fn real_bitmap_encoding_round_trips() {
        let vs: Vec<u32> = vec![0, 3, 8, 62, 63];
        let ms = vec![7u32; 5];
        let pkg = Package::encode(vs.clone(), ms.clone(), WireEncoding::Bitmap, Some(64), None);
        assert_eq!(pkg.encoding(), PackageEncoding::Bitmap);
        // tag + one msg + 64 bits
        assert_eq!(pkg.wire_bytes(), 1 + 4 + 8);
        round_trip(&pkg, &vs, &ms);
    }

    #[test]
    fn real_delta_varint_round_trips_uniform_and_not() {
        let vs: Vec<u32> = vec![5, 6, 200, 100_000];
        let uni = vec![3u32; 4];
        let pkg = Package::encode(vs.clone(), uni.clone(), WireEncoding::DeltaVarint, None, None);
        assert_eq!(pkg.encoding(), PackageEncoding::DeltaVarint);
        // tag + varint count + varints (1 + 1 + 2 + 3) + one uniform payload
        assert_eq!(pkg.wire_bytes(), 2 + 7 + 4);
        round_trip(&pkg, &vs, &uni);
        let distinct = vec![4u32, 3, 2, 1];
        let pkg =
            Package::encode(vs.clone(), distinct.clone(), WireEncoding::DeltaVarint, None, None);
        assert_eq!(pkg.encoding(), PackageEncoding::DeltaVarint);
        round_trip(&pkg, &vs, &distinct);
    }

    #[test]
    fn forced_encodings_fall_back_to_list_when_ineligible() {
        // unsorted ids: neither bitmap nor delta can encode them
        let vs = vec![5u32, 2];
        let ms = vec![1u32, 1];
        for choice in [WireEncoding::Bitmap, WireEncoding::DeltaVarint] {
            let pkg = Package::encode(vs.clone(), ms.clone(), choice, Some(64), None);
            assert_eq!(pkg.encoding(), PackageEncoding::List, "{choice:?} must fall back");
            round_trip(&pkg, &vs, &ms);
        }
    }

    #[test]
    fn auto_picks_the_smallest_eligible_encoding() {
        // dense uniform: bitmap wins
        let vs: Vec<u32> = (0..512).collect();
        let pkg = Package::encode(vs.clone(), vec![1u32; 512], WireEncoding::Auto, Some(512), None);
        assert_eq!(pkg.encoding(), PackageEncoding::Bitmap);
        // sparse uniform in a big space: delta-varint wins
        let vs = vec![10u32, 20, 30];
        let pkg =
            Package::encode(vs.clone(), vec![1u32; 3], WireEncoding::Auto, Some(1 << 20), None);
        assert_eq!(pkg.encoding(), PackageEncoding::DeltaVarint);
        // unsorted non-uniform: only the list is eligible
        let pkg = Package::encode(vec![9u32, 1], vec![1u32, 2], WireEncoding::Auto, None, None);
        assert_eq!(pkg.encoding(), PackageEncoding::List);
    }

    #[test]
    fn empty_and_single_vertex_packages_encode_and_decode() {
        for choice in [
            WireEncoding::Auto,
            WireEncoding::List,
            WireEncoding::Bitmap,
            WireEncoding::DeltaVarint,
        ] {
            let pkg = Package::<u32, u32>::encode(vec![], vec![], choice, Some(64), None);
            let (vs, ms) = pkg.decode();
            assert!(vs.is_empty() && ms.is_empty(), "{choice:?}");
            let pkg = Package::encode(vec![42u32], vec![7u32], choice, Some(64), None);
            let (vs, ms) = pkg.decode();
            assert_eq!((vs.as_ref(), ms.as_ref()), ([42u32].as_slice(), [7u32].as_slice()));
        }
    }

    #[test]
    fn canonicalize_sorts_and_keeps_the_minimum_key() {
        let (vs, ms) =
            canonicalize_monotone(vec![7u32, 2, 7, 2, 5], vec![9u32, 4, 3, 8, 1], &|m| {
                u64::from(*m)
            });
        assert_eq!(vs, vec![2, 5, 7]);
        assert_eq!(ms, vec![4, 1, 3]);
    }

    #[test]
    fn tuple_payloads_round_trip() {
        let vs = vec![1u32, 4, 9];
        let ms = vec![(1u32, 0.5f32), (2, 0.25), (3, 0.125)];
        let pkg = Package::encode(vs.clone(), ms.clone(), WireEncoding::Auto, None, None);
        let (dv, dm) = pkg.decode();
        assert_eq!(dv.as_ref(), &vs);
        assert_eq!(dm.as_ref(), &ms);
    }
}
