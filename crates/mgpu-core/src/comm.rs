//! Communication strategies: frontier splitting, packaging, and the wire
//! format (§III-C).
//!
//! * **Selective-communicate** — send frontier vertices only to their
//!   hosting GPUs; requires a split pass over the output frontier but moves
//!   the minimum volume. Vertex ids on the wire are *owner-local* ids (the
//!   sender resolves each proxy through the conversion table, so the
//!   receiver indexes its arrays directly).
//! * **Broadcast** — send the whole frontier to every peer; no split needed,
//!   but more volume and more combine work (`C ∈ O((n−1)·|V|)` for DOBFS,
//!   Table I). Vertex ids on the wire are *global* ids.
//!
//! Splitting and packaging are "communication computation" — the `C` term
//! of the paper's cost model — and are metered as [`KernelKind::Split`]
//! launches.

use mgpu_graph::Id;
use mgpu_partition::SubGraph;
use vgpu::{Device, KernelKind, Result, COMPUTE_STREAM};

use crate::problem::Wire;

/// Which communication strategy a primitive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommStrategy {
    /// Whole frontier to all peers; wire ids are global.
    Broadcast,
    /// Split per hosting GPU; wire ids are owner-local.
    Selective,
}

/// A packaged remote sub-frontier: vertices plus their programmer-specified
/// associated data, parallel arrays.
#[derive(Debug, Clone)]
pub struct Package<V, M> {
    /// Wire vertex ids (owner-local for selective, global for broadcast).
    pub vertices: Vec<V>,
    /// Associated data, one per vertex.
    pub msgs: Vec<M>,
    /// Wire size in bytes, fixed at packaging time. Selective packages use
    /// list encoding (`len × (id + payload)`); broadcast packages with a
    /// *uniform* payload (every (DO)BFS message of an iteration carries the
    /// same label) use the dense bitmap encoding over the duplicate-all
    /// space (`|V|/8 + payload`) when that is smaller — the frontier-bitmask
    /// representation GPU BFS implementations broadcast in practice.
    wire_bytes: u64,
}

impl<V: Id, M: Wire> Package<V, M> {
    /// A list-encoded package.
    pub fn list(vertices: Vec<V>, msgs: Vec<M>) -> Self {
        let wire_bytes = (vertices.len() * (V::BYTES + M::BYTES)) as u64;
        Package { vertices, msgs, wire_bytes }
    }

    /// A package with the cheaper of list and bitmap encoding, given the
    /// broadcast vertex-space size.
    pub fn best_encoding(vertices: Vec<V>, msgs: Vec<M>, space: usize) -> Self {
        let list = (vertices.len() * (V::BYTES + M::BYTES)) as u64;
        let uniform = msgs.windows(2).all(|w| w[0] == w[1]);
        let bitmap = (space as u64).div_ceil(8) + M::BYTES as u64;
        let wire_bytes = if uniform { list.min(bitmap) } else { list };
        Package { vertices, msgs, wire_bytes }
    }

    /// Size on the wire in bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Number of vertices in the package.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the package carries nothing.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// What a selective split produces: the local sub-frontier plus one
/// optional package per peer (`None` when nothing goes to that peer).
pub type SplitOutput<V, M> = (Vec<V>, Vec<Option<Package<V, M>>>);

/// Reusable split scratch: the per-peer destination histogram. Owned by the
/// caller (one per device, inside `FrontierBufs`) so the per-iteration split
/// allocates nothing beyond the exact-capacity output buffers.
#[derive(Debug, Default)]
pub struct SplitScratch {
    counts: Vec<usize>,
}

/// Selective split: divide `frontier` (local ids) into the local
/// sub-frontier (owned vertices) and one package per peer holding that
/// peer's vertices as owner-local ids. Metered as one Split kernel over the
/// frontier ("data packaging can be done together with frontier splitting").
///
/// Two passes — count, then scatter — so every output buffer is allocated
/// once at its exact final size; the GPU split kernel does the same
/// (histogram + prefix sum + scatter) to compute output cursors. The charge
/// is one frontier scan, as before: the count pass models the cursor
/// computation that the atomic-throughput `Split` metering already covers.
pub fn split_and_package<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    scratch: &mut SplitScratch,
    mut packager: impl FnMut(V) -> M,
) -> Result<SplitOutput<V, M>> {
    let n_parts = sub.n_parts;
    dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
        // pass 1: destination histogram (slot n_parts counts the local part)
        let counts = &mut scratch.counts;
        counts.clear();
        counts.resize(n_parts + 1, 0);
        for &v in frontier {
            if sub.is_owned(v) {
                counts[n_parts] += 1;
            } else {
                counts[sub.owner(v) as usize] += 1;
            }
        }
        // pass 2: scatter into exact-capacity buffers
        let mut local = Vec::with_capacity(counts[n_parts]);
        let mut parts: Vec<(Vec<V>, Vec<M>)> = counts[..n_parts]
            .iter()
            .map(|&c| (Vec::with_capacity(c), Vec::with_capacity(c)))
            .collect();
        for &v in frontier {
            if sub.is_owned(v) {
                local.push(v);
            } else {
                let peer = sub.owner(v) as usize;
                parts[peer].0.push(sub.to_owner_local(v));
                parts[peer].1.push(packager(v));
            }
        }
        let pkgs: Vec<Option<Package<V, M>>> = parts
            .into_iter()
            .map(|(vs, ms)| (!vs.is_empty()).then(|| Package::list(vs, ms)))
            .collect();
        ((local, pkgs), frontier.len() as u64)
    })
}

/// Broadcast packaging: the whole frontier (as global ids) goes to every
/// peer; the local sub-frontier is the whole frontier — the caller keeps
/// using its own frontier vector, so nothing is copied for the local part.
/// No split pass is needed, only id conversion and data packaging — still
/// one Split-class kernel, but the per-peer loop disappears. The returned
/// package is wrapped in an `Arc` by the sender and fanned out to all peers
/// without further copies.
pub fn broadcast_package<V: Id, O: Id, M: Wire>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    frontier: &[V],
    mut packager: impl FnMut(V) -> M,
) -> Result<Package<V, M>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Split, || {
        let vertices: Vec<V> = frontier.iter().map(|&v| sub.to_global(v)).collect();
        let msgs: Vec<M> = frontier.iter().map(|&v| packager(v)).collect();
        // broadcast ids live in the global space; the bitmap alternative
        // spans that space
        let pkg = Package::best_encoding(vertices, msgs, sub.n_vertices());
        (pkg, frontier.len() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    fn cycle6(dup: Duplication) -> DistGraph<u32, u64> {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(6, edges, None));
        DistGraph::build(&g, vec![0, 0, 0, 1, 1, 1], 2, dup)
    }

    #[test]
    fn selective_split_separates_owned_and_remote_dup_all() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        // GPU0's frontier holds owned {1,2} and remote {3,5}
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package(&mut dev, &dg.parts[0], &[1, 2, 3, 5], &mut scratch, |v| v * 10)
                .unwrap();
        assert_eq!(local, vec![1, 2]);
        assert!(pkgs[0].is_none(), "nothing to self");
        let p1 = pkgs[1].as_ref().unwrap();
        assert_eq!(p1.vertices, vec![3, 5], "dup-all wire ids are global ids");
        assert_eq!(p1.msgs, vec![30, 50]);
        assert_eq!(p1.wire_bytes(), 2 * 8);
        assert_eq!(dev.counters.c_items, 4, "split is communication computation");
    }

    #[test]
    fn selective_split_converts_proxies_to_owner_local_ids_one_hop() {
        let dg = cycle6(Duplication::OneHop);
        let mut dev = Device::new(0, HardwareProfile::k40());
        // On GPU0: locals 0..3 owned; proxy 3 = global 3 (owner-local 0),
        // proxy 4 = global 5 (owner-local 2)
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package(&mut dev, &dg.parts[0], &[2, 3, 4], &mut scratch, |v| v).unwrap();
        assert_eq!(local, vec![2]);
        let p1 = pkgs[1].as_ref().unwrap();
        assert_eq!(p1.vertices, vec![0, 2], "owner-local ids on the wire");
        assert_eq!(p1.msgs, vec![3, 4], "packager saw sender-local ids");
    }

    #[test]
    fn broadcast_keeps_whole_frontier_local_and_packages_global_ids() {
        let dg = cycle6(Duplication::OneHop);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let frontier = [2u32, 4];
        let pkg = broadcast_package(&mut dev, &dg.parts[0], &frontier, |_| ()).unwrap();
        // the caller's own frontier *is* the local part — nothing is copied
        assert_eq!(pkg.vertices, vec![2, 5], "local 4 is global 5");
        assert_eq!(
            pkg.wire_bytes(),
            1,
            "unit messages are uniform: the 6-vertex bitmap (1 byte) beats the 8-byte list"
        );
    }

    #[test]
    fn empty_frontier_produces_no_packages() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        let (local, pkgs) =
            split_and_package::<u32, u64, ()>(&mut dev, &dg.parts[0], &[], &mut scratch, |_| ())
                .unwrap();
        assert!(local.is_empty());
        assert!(pkgs.iter().all(Option::is_none));
    }

    #[test]
    fn split_scratch_is_reusable_across_iterations() {
        let dg = cycle6(Duplication::All);
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        for frontier in [vec![1u32, 3, 5], vec![0, 2], vec![4], vec![]] {
            let (local, pkgs) =
                split_and_package(&mut dev, &dg.parts[0], &frontier, &mut scratch, |v| v).unwrap();
            let total: usize = local.len() + pkgs.iter().flatten().map(Package::len).sum::<usize>();
            assert_eq!(total, frontier.len(), "split conserves the frontier");
            for pkg in pkgs.iter().flatten() {
                assert_eq!(pkg.vertices.len(), pkg.vertices.capacity(), "exact-size scatter");
            }
        }
    }
}

#[cfg(test)]
mod encoding_tests {
    use super::*;

    #[test]
    fn uniform_broadcast_payload_uses_bitmap_when_dense() {
        // 1000 vertices of a 4096-vertex space, all carrying label 7:
        // list = 1000×8 = 8000 B; bitmap = 4096/8 + 4 = 516 B
        let vs: Vec<u32> = (0..1000).collect();
        let ms = vec![7u32; 1000];
        let pkg = Package::best_encoding(vs, ms, 4096);
        assert_eq!(pkg.wire_bytes(), 516);
    }

    #[test]
    fn sparse_uniform_broadcast_keeps_list_encoding() {
        // 3 vertices of a huge space: list wins
        let pkg = Package::best_encoding(vec![1u32, 2, 3], vec![7u32; 3], 1 << 20);
        assert_eq!(pkg.wire_bytes(), 3 * 8);
    }

    #[test]
    fn non_uniform_payload_cannot_use_bitmap() {
        let vs: Vec<u32> = (0..1000).collect();
        let ms: Vec<u32> = (0..1000).collect(); // distinct values
        let pkg = Package::best_encoding(vs, ms, 4096);
        assert_eq!(pkg.wire_bytes(), 1000 * 8);
    }

    #[test]
    fn empty_uniform_package_is_free_under_list_encoding() {
        let pkg = Package::<u32, u32>::best_encoding(vec![], vec![], 4096);
        assert_eq!(pkg.wire_bytes(), 0);
    }
}
