//! # mgpu-baselines — re-implemented comparison mechanisms
//!
//! The paper's Tables III and IV compare against a dozen published systems.
//! None of their binaries can run here, so we re-implement the *mechanisms*
//! those systems are built on, on the same virtual-GPU substrate, so that
//! the comparisons measure mechanism differences under one calibrated cost
//! model (see DESIGN.md §2):
//!
//! * [`hardwired`] — an Enterprise-like hardwired DOBFS: monolithic
//!   per-iteration code, atomic status updates, worst-case allocation, a
//!   full-vertex scan on every bottom-up iteration, and no
//!   computation/communication overlap.
//! * [`bfs2d`] — a Fu/Bisson-style 2D-partitioned BFS with column-wise
//!   frontier contraction: the whole-slice frontier exchanges that make
//!   "large edge frontiers transmitted between GPUs cause large
//!   communication overheads".
//! * [`oocgas`] — a GraphReduce-like out-of-core Gather-Apply-Scatter
//!   engine that streams edge shards over PCIe to a single GPU; the PCIe
//!   bus is the bottleneck, exactly as §II-A argues.
//! * [`hybrid`] — a Totem-like heterogeneous placement: one CPU "device"
//!   (Xeon profile, big memory, low throughput) plus GPUs, running the
//!   unmodified framework primitives.

pub mod bfs2d;
pub mod hardwired;
pub mod hybrid;
pub mod oocgas;
pub mod taskparallel;

pub use bfs2d::Bfs2d;
pub use hardwired::HardwiredDobfs;
pub use hybrid::{hybrid_system, DegreePartitioner};
pub use oocgas::{OocBfs, OocCc, OocEngine, OocPagerank, OocProgram, OocSssp};
pub use taskparallel::TaskParallelBc;
