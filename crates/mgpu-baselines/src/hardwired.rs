//! An Enterprise-like hardwired DOBFS baseline (Liu & Huang, SC '15).
//!
//! Enterprise is "a hardwired DOBFS implementation with various
//! optimizations … considered state of the art for a traditional DOBFS
//! implementation on GPUs within a single node" (§VII-C); the paper's
//! framework nevertheless outperforms it 2–5×. The mechanisms that cost it,
//! all reproduced here:
//!
//! * the bottom-up step scans **every** vertex each iteration (Beamer's
//!   original formulation) instead of maintaining a shrinking unvisited
//!   frontier, so late iterations pay `O(|V|)` repeatedly;
//! * status updates go through atomics (metered at combine throughput);
//! * frontier buffers use worst-case (`|E|`-sized) allocation;
//! * inter-GPU exchanges run on the compute stream — no
//!   computation/communication overlap.

use mgpu_core::direction::{Direction, DirectionConfig, DirectionState};
use mgpu_core::EnactReport;
use mgpu_graph::Id;
use mgpu_partition::DistGraph;
use vgpu::{KernelKind, Result, SimSystem, COMPUTE_STREAM};

/// Unvisited marker.
const INF: u32 = u32::MAX;

/// The hardwired DOBFS baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardwiredDobfs {
    /// Direction-switch thresholds (same estimator as the framework's, to
    /// isolate the mechanism differences listed in the module docs).
    pub direction: DirectionConfig,
}

impl HardwiredDobfs {
    /// Run DOBFS from `src` over `dist` (duplicate-all, CSCs built) on
    /// `system`. Returns the report plus the final labels in global order.
    pub fn run<V: Id, O: Id>(
        &self,
        system: &mut SimSystem,
        dist: &DistGraph<V, O>,
        src: V,
    ) -> Result<(EnactReport, Vec<u32>)> {
        assert_eq!(system.n_devices(), dist.n_parts);
        system.reset_clocks();
        let n = dist.n_parts;
        let n_global = dist.n_global;
        let t0 = std::time::Instant::now();

        // Worst-case allocation: |E_i|-sized frontier buffers + labels.
        let mut topology = Vec::with_capacity(n);
        let mut frontier_bufs = Vec::with_capacity(n);
        let mut label_arrays = Vec::with_capacity(n);
        for (dev, sub) in system.devices.iter_mut().zip(&dist.parts) {
            topology.push(dev.pool().reserve_external(sub.topology_bytes())?);
            frontier_bufs.push(dev.alloc_with_capacity::<u32>(sub.n_edges().max(1))?);
            label_arrays.push(dev.alloc::<u32>(n_global)?);
        }
        for labels in &mut label_arrays {
            labels.as_mut_slice().fill(INF);
        }

        let mut dirs: Vec<DirectionState> =
            (0..n).map(|_| DirectionState::new(self.direction)).collect();
        let mut visited = vec![0usize; n];
        let mut frontier: Vec<V> = vec![src];
        for labels in &mut label_arrays {
            labels[src.idx()] = 0;
        }
        for v in visited.iter_mut() {
            *v = 1;
        }

        let mut iterations = 0usize;
        loop {
            let cur = iterations as u32;
            let mut discovered: Vec<V> = Vec::new();
            // Sequential orchestration per iteration (one CPU thread drives
            // all GPUs, a further Enterprise simplification); the BSP time
            // alignment below still models the devices running in parallel.
            let mut iteration_times = Vec::with_capacity(n);
            for gpu in 0..n {
                let dev = &mut system.devices[gpu];
                let sub = &dist.parts[gpu];
                let labels = &mut label_arrays[gpu];
                let dir = dirs[gpu].decide(
                    frontier.len(),
                    n_global - visited[gpu],
                    visited[gpu],
                    sub.n_edges(),
                    n_global,
                );
                let found: Vec<V> = match dir {
                    Direction::Forward => {
                        // top-down; atomic status updates cost ~1.5x the
                        // plain advance work per edge
                        dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                            let mut found = Vec::new();
                            let mut edges = 0u64;
                            for &v in &frontier {
                                for e in sub.csr.edge_range(v) {
                                    edges += 1;
                                    let d = sub.csr.col_indices()[e];
                                    if labels[d.idx()] == INF {
                                        labels[d.idx()] = cur + 1;
                                        found.push(d);
                                    }
                                }
                            }
                            (found, edges + edges / 2)
                        })?
                    }
                    Direction::Backward => {
                        // Beamer-style: scan ALL vertices, process unvisited
                        let csc = sub.csc.as_ref().expect("build_cscs before run");
                        dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                            let mut found = Vec::new();
                            let mut work = n_global as u64; // the full scan
                            for v in 0..n_global {
                                if labels[v] != INF {
                                    continue;
                                }
                                let vid = V::from_usize(v);
                                for &p in csc.neighbors(vid) {
                                    work += 1;
                                    if labels[p.idx()] == cur {
                                        labels[v] = cur + 1;
                                        found.push(vid);
                                        break;
                                    }
                                }
                            }
                            (found, work)
                        })?
                    }
                };
                visited[gpu] += found.len();
                discovered.extend(found);
                iteration_times.push(dev.now());
            }

            // Broadcast exchange on the *compute* stream (no overlap):
            // every GPU receives every other GPU's discoveries.
            let interconnect = std::sync::Arc::clone(&system.interconnect);
            let mut dedup: Vec<V> = discovered;
            dedup.sort_unstable();
            dedup.dedup();
            for gpu in 0..n {
                let dev = &mut system.devices[gpu];
                let bytes = (dedup.len() * (V::BYTES + 4)) as u64;
                for peer in 0..n {
                    if peer != gpu && !dedup.is_empty() {
                        let cost = interconnect.transfer_us(gpu, peer, bytes);
                        dev.charge(COMPUTE_STREAM, cost, 0.0)?;
                        dev.counters.h_bytes_sent += interconnect.charged_bytes(bytes);
                        dev.counters.h_vertices += dedup.len() as u64;
                        dev.counters.h_messages += 1;
                    }
                }
                // apply peer discoveries with atomics
                let labels = &mut label_arrays[gpu];
                let count = dedup.len() as u64;
                let next = cur + 1;
                let newly = dev.kernel(COMPUTE_STREAM, KernelKind::Combine, || {
                    let mut newly = 0usize;
                    for &v in &dedup {
                        if labels[v.idx()] == INF {
                            labels[v.idx()] = next;
                            newly += 1;
                        }
                    }
                    (newly, count)
                })?;
                visited[gpu] += newly;
            }

            // BSP alignment.
            let global = system.makespan_us();
            for dev in &mut system.devices {
                dev.end_superstep(n, global);
            }
            iterations += 1;
            frontier = dedup;
            if frontier.is_empty() {
                break;
            }
        }

        let labels_out: Vec<u32> = (0..n_global).map(|v| label_arrays[0][v]).collect();
        let report = EnactReport {
            primitive: "Enterprise-like DOBFS",
            n_devices: n,
            iterations,
            sim_time_us: system.makespan_us(),
            wall_time_us: t0.elapsed().as_secs_f64() * 1e6,
            totals: system.total_counters(),
            per_device: system.devices.iter().map(|d| d.counters).collect(),
            peak_memory_per_device: system.peak_memory_per_device(),
            total_peak_memory: system.total_peak_memory(),
            pool_reallocs: system.devices.iter().map(|d| d.pool().reallocs()).sum(),
            mem_per_device: system
                .devices
                .iter()
                .map(|d| mgpu_core::DeviceMemStats::of(d.pool()))
                .collect(),
            history: Vec::new(),
            recovery: mgpu_core::RecoveryLog::default(),
            governor: mgpu_core::GovernorLog::default(),
            comm: mgpu_core::CommReduction::default(),
            trace: None,
        };
        Ok((report, labels_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::{EnactConfig, Runner};
    use mgpu_gen::preferential_attachment;
    use mgpu_graph::{Csr, GraphBuilder};
    use mgpu_partition::Duplication;
    use mgpu_primitives::{reference, Dobfs};
    use vgpu::HardwareProfile;

    fn setup(n: usize) -> (Csr<u32, u64>, DistGraph<u32, u64>) {
        setup_sized(n, 400, 8)
    }

    fn setup_sized(n: usize, v: usize, m: usize) -> (Csr<u32, u64>, DistGraph<u32, u64>) {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(v, m, 3));
        let owner: Vec<u32> = (0..v).map(|x| (x % n) as u32).collect();
        let mut dist = DistGraph::build(&g, owner, n, Duplication::All);
        dist.build_cscs();
        (g, dist)
    }

    #[test]
    fn produces_correct_labels() {
        let (g, dist) = setup(2);
        let mut system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let (_, labels) = HardwiredDobfs::default().run(&mut system, &dist, 0u32).unwrap();
        assert_eq!(labels, reference::bfs(&g, 0u32));
    }

    /// A 2-device system with overheads scaled down to match the scaled-down
    /// test graph (the dimensional scaling of DESIGN.md) so that *mechanism*
    /// costs — rescans, atomics, missing overlap — dominate the comparison,
    /// as they do at paper scale.
    fn scaled_system() -> SimSystem {
        let profile = HardwareProfile::k40().with_overhead_scale(256.0);
        let ic = vgpu::Interconnect::pcie3(2, 4).with_latency_scale(256.0);
        SimSystem::new(vec![profile; 2], ic).unwrap()
    }

    #[test]
    fn framework_dobfs_beats_hardwired_in_sim_time() {
        let (_, dist) = setup_sized(2, 20_000, 16);
        let mut hw_system = scaled_system();
        let (hw, _) = HardwiredDobfs::default().run(&mut hw_system, &dist, 0u32).unwrap();

        let system = scaled_system();
        let mut runner =
            Runner::new(system, &dist, Dobfs::default(), EnactConfig::default()).unwrap();
        let ours = runner.enact(Some(0u32)).unwrap();
        assert!(
            ours.sim_time_us < hw.sim_time_us,
            "framework {} µs should beat hardwired {} µs",
            ours.sim_time_us,
            hw.sim_time_us
        );
    }

    #[test]
    fn hardwired_uses_more_memory_than_framework() {
        let (_, dist) = setup(2);
        let mut hw_system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let (hw, _) = HardwiredDobfs::default().run(&mut hw_system, &dist, 0u32).unwrap();

        let system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, Dobfs::default(), EnactConfig::default()).unwrap();
        let ours = runner.enact(Some(0u32)).unwrap();
        assert!(
            hw.peak_memory_per_device > ours.peak_memory_per_device,
            "worst-case allocation {} should exceed framework {}",
            hw.peak_memory_per_device,
            ours.peak_memory_per_device
        );
    }
}
