//! Totem-like hybrid CPU+GPU placement (Gharaibeh et al. [13]).
//!
//! Totem "either processes the workload on the CPU or transmits it to the
//! GPU according to a performance estimation model" — in practice it
//! partitions the graph between host and device by degree. We reproduce the
//! mechanism by treating the host CPU as one more device (the Xeon
//! hardware profile: huge memory, ~10× lower traversal throughput) and
//! running the *unmodified* framework primitives over the heterogeneous
//! system — which is exactly the generality claim of §III.

use mgpu_graph::{Csr, Id};
use mgpu_partition::Partitioner;
use vgpu::{HardwareProfile, Interconnect, SimSystem};

/// Build a hybrid system: device 0 is the host CPU (Xeon profile), devices
/// `1..=n_gpus` are GPUs, all on the PCIe fabric.
pub fn hybrid_system(n_gpus: usize, gpu_profile: HardwareProfile) -> SimSystem {
    let mut profiles = vec![HardwareProfile::xeon_e5()];
    profiles.extend(std::iter::repeat_n(gpu_profile, n_gpus));
    SimSystem::new(profiles, Interconnect::pcie3(n_gpus + 1, n_gpus + 1))
        .expect("sizes match by construction")
}

/// Degree-based placement: following Totem's best-performing configuration,
/// the highest-degree vertices go to the GPUs (they carry most of the
/// edges and parallelize well); the long low-degree tail stays on the CPU.
#[derive(Debug, Clone, Copy)]
pub struct DegreePartitioner {
    /// Fraction of vertices (the lowest-degree ones) placed on the CPU
    /// (part 0).
    pub cpu_vertex_fraction: f64,
}

impl Default for DegreePartitioner {
    fn default() -> Self {
        DegreePartitioner { cpu_vertex_fraction: 0.5 }
    }
}

impl Partitioner for DegreePartitioner {
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32> {
        assert!(n_parts >= 2, "hybrid placement needs the CPU part plus at least one GPU");
        let n = graph.n_vertices();
        let mut by_degree: Vec<usize> = (0..n).collect();
        by_degree.sort_by_key(|&v| graph.degree(V::from_usize(v)));
        let cpu_count = ((n as f64) * self.cpu_vertex_fraction) as usize;
        let mut owner = vec![0u32; n];
        let n_gpus = n_parts - 1;
        for (rank, &v) in by_degree.iter().enumerate() {
            owner[v] = if rank < cpu_count {
                0 // the CPU hosts the low-degree tail
            } else {
                (1 + (rank - cpu_count) % n_gpus) as u32
            };
        }
        owner
    }

    fn name(&self) -> &'static str {
        "degree-hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::{EnactConfig, Runner};
    use mgpu_gen::preferential_attachment;
    use mgpu_graph::GraphBuilder;
    use mgpu_partition::{DistGraph, Duplication};
    use mgpu_primitives::{bfs::gather_labels, reference, Bfs};
    use vgpu::SimSystem;

    #[test]
    fn hybrid_system_has_cpu_and_gpus() {
        let sys = hybrid_system(2, HardwareProfile::k40());
        assert_eq!(sys.n_devices(), 3);
        assert_eq!(sys.devices[0].profile().name, "Xeon E5-2690 v2");
        assert_eq!(sys.devices[1].profile().name, "Tesla K40");
    }

    #[test]
    fn degree_partitioner_puts_low_degree_on_cpu() {
        let g: mgpu_graph::Csr<u32, u64> =
            GraphBuilder::undirected(&preferential_attachment(300, 6, 2));
        let owner = DegreePartitioner::default().assign(&g, 3);
        let cpu_max: usize =
            (0..300u32).filter(|&v| owner[v as usize] == 0).map(|v| g.degree(v)).max().unwrap();
        let gpu_max: usize =
            (0..300u32).filter(|&v| owner[v as usize] != 0).map(|v| g.degree(v)).max().unwrap();
        assert!(gpu_max > cpu_max, "hubs belong on the GPU");
    }

    #[test]
    fn unmodified_bfs_runs_on_the_hybrid_system() {
        let g: mgpu_graph::Csr<u32, u64> =
            GraphBuilder::undirected(&preferential_attachment(300, 6, 2));
        let dist = DistGraph::partition(&g, &DegreePartitioner::default(), 3, Duplication::All);
        let system = hybrid_system(2, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_labels(&runner, &dist), reference::bfs(&g, 0u32));
    }

    #[test]
    fn all_gpu_beats_hybrid_at_equal_device_count() {
        // 4 processors: {2 CPU-ish + 2 GPU} vs {4 GPU} — the paper's Totem
        // comparison shape ("we use the same number of processors … and
        // achieve better performance").
        let g: mgpu_graph::Csr<u32, u64> =
            GraphBuilder::undirected(&preferential_attachment(2000, 16, 7));

        // dimensional scaling so mechanism costs, not fixed overheads,
        // dominate (the graphs here are ~2^8 below paper scale)
        let scale = 256.0;
        let dist_h = DistGraph::partition(&g, &DegreePartitioner::default(), 3, Duplication::All);
        let mut profiles = vec![HardwareProfile::xeon_e5().with_overhead_scale(scale)];
        profiles.extend(vec![HardwareProfile::k40().with_overhead_scale(scale); 2]);
        let sys_h =
            SimSystem::new(profiles, vgpu::Interconnect::pcie3(3, 3).with_latency_scale(scale))
                .unwrap();
        let mut run_h =
            Runner::new(sys_h, &dist_h, Bfs::default(), EnactConfig::default()).unwrap();
        let hybrid = run_h.enact(Some(0u32)).unwrap();

        let owner: Vec<u32> = (0..2000).map(|v| (v % 3) as u32).collect();
        let dist_g = DistGraph::build(&g, owner, 3, Duplication::All);
        let sys_g = SimSystem::new(
            vec![HardwareProfile::k40().with_overhead_scale(scale); 3],
            vgpu::Interconnect::pcie3(3, 4).with_latency_scale(scale),
        )
        .unwrap();
        let mut run_g =
            Runner::new(sys_g, &dist_g, Bfs::default(), EnactConfig::default()).unwrap();
        let all_gpu = run_g.enact(Some(0u32)).unwrap();

        assert!(
            all_gpu.sim_time_us < hybrid.sim_time_us,
            "all-GPU {} µs should beat hybrid {} µs",
            all_gpu.sim_time_us,
            hybrid.sim_time_us
        );
    }
}
