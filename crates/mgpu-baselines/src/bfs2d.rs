//! A 2D-partitioned BFS baseline (Fu et al. [25], Bisson et al. [8]).
//!
//! The adjacency matrix is blocked over an R×C processor grid: GPU `(i,j)`
//! stores the edges from row-slice `i` to column-slice `j`. Each iteration:
//!
//! 1. every GPU expands its block for the frontier vertices in its row
//!    slice, producing a *candidate list* (the "edge frontier" — with
//!    duplicates, nothing is deduplicated before transmission);
//! 2. candidates are sent down each column to the column leader, which
//!    contracts them against the visited set;
//! 3. leaders broadcast the new frontier slices for the next iteration.
//!
//! This is the communication pattern §II-A criticizes: "large edge
//! frontiers transmitted between GPUs cause large communication overheads
//! and limit scalability" — and the 1-hop-only data access restricts
//! algorithm generality (this engine can express BFS, not CC).

use mgpu_graph::{Csr, Id};
use mgpu_core::EnactReport;
use vgpu::{KernelKind, Result, SimSystem, COMPUTE_STREAM};

/// Unvisited marker.
const INF: u32 = u32::MAX;

/// The 2D-partitioned BFS engine.
#[derive(Debug, Clone, Copy)]
pub struct Bfs2d {
    /// Processor grid rows.
    pub rows: usize,
    /// Processor grid columns.
    pub cols: usize,
}

impl Bfs2d {
    /// A near-square grid for `n` GPUs (e.g. 4 → 2×2, 6 → 2×3).
    pub fn for_gpus(n: usize) -> Self {
        assert!(n > 0);
        let mut r = (n as f64).sqrt() as usize;
        while !n.is_multiple_of(r) {
            r -= 1;
        }
        Bfs2d { rows: r, cols: n / r }
    }

    /// Total GPUs in the grid.
    pub fn n_gpus(&self) -> usize {
        self.rows * self.cols
    }

    /// Run BFS from `src` on `system` (which must have `rows × cols`
    /// devices). Returns the report and the labels in global order.
    pub fn run<V: Id, O: Id>(
        &self,
        system: &mut SimSystem,
        graph: &Csr<V, O>,
        src: V,
    ) -> Result<(EnactReport, Vec<u32>)> {
        let (rows, cols) = (self.rows, self.cols);
        let n_gpus = rows * cols;
        assert_eq!(system.n_devices(), n_gpus, "grid size must match device count");
        system.reset_clocks();
        let n = graph.n_vertices();
        let t0 = std::time::Instant::now();

        let row_slice = |v: usize| (v * rows / n).min(rows - 1);
        let col_slice = |v: usize| (v * cols / n).min(cols - 1);
        let gpu_at = |i: usize, j: usize| i * cols + j;
        let leader_of_col = |j: usize| gpu_at(j % rows, j);

        // Build the edge blocks (preprocessing; charged as upload time).
        let mut blocks: Vec<Vec<(V, V)>> = vec![Vec::new(); n_gpus];
        for u in 0..n {
            let uid = V::from_usize(u);
            let i = row_slice(u);
            for &v in graph.neighbors(uid) {
                blocks[gpu_at(i, col_slice(v.idx()))].push((uid, v));
            }
        }
        let mut reservations = Vec::with_capacity(n_gpus);
        for (g, block) in blocks.iter().enumerate() {
            let dev = &mut system.devices[g];
            let bytes = (block.len() * 2 * V::BYTES) as u64;
            reservations.push(dev.pool().reserve_external(bytes)?);
            let cost = dev.profile().local_copy_us(bytes);
            dev.charge(COMPUTE_STREAM, cost, 0.0)?;
        }

        // Labels live (conceptually) at the column leaders; mirrored here.
        let mut labels = vec![INF; n];
        labels[src.idx()] = 0;
        let mut frontier: Vec<V> = vec![src];
        let interconnect = std::sync::Arc::clone(&system.interconnect);
        let mut iterations = 0usize;

        while !frontier.is_empty() {
            let cur = iterations as u32;
            // --- expand: each GPU processes its block's frontier rows ---
            let mut candidates: Vec<Vec<V>> = vec![Vec::new(); cols];
            for i in 0..rows {
                let row_frontier: Vec<V> =
                    frontier.iter().copied().filter(|v| row_slice(v.idx()) == i).collect();
                for (j, col_candidates) in candidates.iter_mut().enumerate() {
                    let g = gpu_at(i, j);
                    let block = &blocks[g];
                    let dev = &mut system.devices[g];
                    // binary-search each frontier vertex's edge range
                    let cand = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                        let mut out = Vec::new();
                        let mut edges = 0u64;
                        for &u in &row_frontier {
                            let start = block.partition_point(|&(s, _)| s < u);
                            for &(s, d) in &block[start..] {
                                if s != u {
                                    break;
                                }
                                edges += 1;
                                out.push(d); // no dedup: the edge frontier
                            }
                        }
                        (out, edges)
                    })?;
                    // --- send candidates to the column leader ---
                    let leader = leader_of_col(j);
                    if g != leader && !cand.is_empty() {
                        let bytes = (cand.len() * V::BYTES) as u64;
                        let cost = interconnect.transfer_us(g, leader, bytes);
                        let dev = &mut system.devices[g];
                        dev.charge(COMPUTE_STREAM, cost, 0.0)?;
                        dev.counters.h_bytes_sent += interconnect.charged_bytes(bytes);
                        dev.counters.h_vertices += cand.len() as u64;
                        dev.counters.h_messages += 1;
                    }
                    col_candidates.extend(cand);
                }
            }
            // --- contract at column leaders ---
            let mut next: Vec<V> = Vec::new();
            for (j, cand) in candidates.iter().enumerate() {
                let leader = leader_of_col(j);
                let dev = &mut system.devices[leader];
                let found = dev.kernel(COMPUTE_STREAM, KernelKind::Combine, || {
                    let mut found = Vec::new();
                    for &v in cand {
                        if labels[v.idx()] == INF {
                            labels[v.idx()] = cur + 1;
                            found.push(v);
                        }
                    }
                    (found, cand.len() as u64)
                })?;
                // --- leaders broadcast the new frontier slice ---
                if !found.is_empty() {
                    let bytes = (found.len() * V::BYTES) as u64;
                    for peer in 0..n_gpus {
                        if peer != leader {
                            let cost = interconnect.transfer_us(leader, peer, bytes);
                            let dev = &mut system.devices[leader];
                            dev.charge(COMPUTE_STREAM, cost, 0.0)?;
                            dev.counters.h_bytes_sent += interconnect.charged_bytes(bytes);
                            dev.counters.h_vertices += found.len() as u64;
                            dev.counters.h_messages += 1;
                        }
                    }
                }
                next.extend(found);
            }
            // --- BSP alignment ---
            let global = system.makespan_us();
            for dev in &mut system.devices {
                dev.end_superstep(n_gpus, global);
            }
            frontier = next;
            iterations += 1;
        }

        let report = EnactReport {
            primitive: "2D-partitioned BFS",
            n_devices: n_gpus,
            iterations,
            sim_time_us: system.makespan_us(),
            wall_time_us: t0.elapsed().as_secs_f64() * 1e6,
            totals: system.total_counters(),
            per_device: system.devices.iter().map(|d| d.counters).collect(),
            peak_memory_per_device: system.peak_memory_per_device(),
            total_peak_memory: system.total_peak_memory(),
            pool_reallocs: system.devices.iter().map(|d| d.pool().reallocs()).sum(),
            mem_per_device: system
                .devices
                .iter()
                .map(|d| mgpu_core::DeviceMemStats::of(d.pool()))
                .collect(),
            history: Vec::new(),
            recovery: mgpu_core::RecoveryLog::default(),
            governor: mgpu_core::GovernorLog::default(),
            comm: mgpu_core::CommReduction::default(),
            trace: None,
        };
        Ok((report, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::{EnactConfig, Runner};
    use mgpu_gen::preferential_attachment;
    use mgpu_graph::GraphBuilder;
    use mgpu_partition::{DistGraph, Duplication};
    use mgpu_primitives::{reference, Bfs};
    use vgpu::HardwareProfile;

    fn soc() -> Csr<u32, u64> {
        GraphBuilder::undirected(&preferential_attachment(500, 6, 9))
    }

    #[test]
    fn grid_factorization() {
        assert_eq!((Bfs2d::for_gpus(4).rows, Bfs2d::for_gpus(4).cols), (2, 2));
        assert_eq!((Bfs2d::for_gpus(6).rows, Bfs2d::for_gpus(6).cols), (2, 3));
        assert_eq!((Bfs2d::for_gpus(1).rows, Bfs2d::for_gpus(1).cols), (1, 1));
    }

    #[test]
    fn labels_match_reference() {
        let g = soc();
        let engine = Bfs2d::for_gpus(4);
        let mut system = SimSystem::homogeneous(4, HardwareProfile::k40());
        let (_, labels) = engine.run(&mut system, &g, 0u32).unwrap();
        assert_eq!(labels, reference::bfs(&g, 0u32));
    }

    #[test]
    fn edge_frontier_volume_exceeds_1d_selective() {
        let g = soc();
        let engine = Bfs2d::for_gpus(4);
        let mut system = SimSystem::homogeneous(4, HardwareProfile::k40());
        let (r2d, _) = engine.run(&mut system, &g, 0u32).unwrap();

        let owner: Vec<u32> = (0..500).map(|v| (v % 4) as u32).collect();
        let dist = DistGraph::build(&g, owner, 4, Duplication::All);
        let system = SimSystem::homogeneous(4, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let r1d = runner.enact(Some(0u32)).unwrap();
        assert!(
            r2d.totals.h_vertices > r1d.totals.h_vertices,
            "2D edge-frontier traffic {} should exceed 1D selective {}",
            r2d.totals.h_vertices,
            r1d.totals.h_vertices
        );
    }
}
