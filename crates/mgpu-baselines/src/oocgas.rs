//! An out-of-core Gather-Apply-Scatter engine (GraphReduce-like [15]).
//!
//! The graph lives in host memory, sharded by source-vertex range; each
//! superstep streams every shard whose sources are active across PCIe to a
//! *single* GPU and runs the gather/apply kernels there. "It must stream
//! the graph to the GPU during the computation, making the PCIe bus a
//! performance bottleneck. Its use of only 1 GPU also makes it unable to
//! achieve performance scalability" (§II-A) — both properties fall out of
//! the cost model here, which is what makes the Table IV comparison
//! (seconds for out-of-core vs milliseconds for in-core) reproducible.
//!
//! The GAS abstraction keeps algorithm generality: BFS, SSSP, CC and PR are
//! all expressed as [`OocProgram`]s.

use mgpu_graph::{Csr, Id};
use vgpu::{Device, HardwareProfile, KernelKind, Result, COMPUTE_STREAM};

/// A vertex program for the out-of-core GAS engine.
pub trait OocProgram {
    /// Per-vertex value.
    type Val: Copy + Send + 'static;
    /// Gather accumulator.
    type Acc: Copy + Send + 'static;

    /// Program name for reports.
    const NAME: &'static str;

    /// Initial value of vertex `v` (`n` = vertex count, `src` = optional
    /// source).
    fn init(&self, v: usize, n: usize, src: Option<usize>) -> Self::Val;
    /// Is `v` active in the first superstep?
    fn initially_active(&self, v: usize, src: Option<usize>) -> bool;
    /// The gather identity.
    fn identity(&self) -> Self::Acc;
    /// Message generated along an edge from an active source.
    fn scatter(&self, u_val: Self::Val, weight: u32, u_degree: usize) -> Self::Acc;
    /// Merge two accumulator values.
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
    /// Apply the gathered accumulator: returns the new value and whether
    /// the vertex is active in the next superstep.
    fn apply(&self, old: Self::Val, acc: Self::Acc, received: bool, n: usize) -> (Self::Val, bool);
    /// Superstep cap (PR uses a fixed iteration count).
    fn max_supersteps(&self) -> usize {
        usize::MAX
    }
}

/// Report from one out-of-core run.
#[derive(Debug, Clone)]
pub struct OocReport {
    /// Program name.
    pub program: &'static str,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Simulated time in microseconds.
    pub sim_time_us: f64,
    /// Simulated microseconds spent on PCIe streaming alone.
    pub stream_time_us: f64,
    /// Bytes streamed over PCIe.
    pub streamed_bytes: u64,
}

/// The out-of-core engine: one GPU, host-resident shards.
#[derive(Debug)]
pub struct OocEngine {
    /// The single GPU.
    pub device: Device,
    /// Host↔device PCIe bandwidth in GB/s. GraphReduce streams shards from
    /// *pageable* host memory, which sustains well under the pinned-memory
    /// peak (~6 GB/s on the paper's PCIe 3 testbed).
    pub pcie_gb_s: f64,
    /// Per-transfer latency in microseconds.
    pub pcie_latency_us: f64,
    /// Shard size in edges (sized so a shard fits in a fraction of GPU
    /// memory alongside the vertex arrays).
    pub shard_edges: usize,
    /// Streaming passes per superstep: GAS engines re-stream shard data for
    /// the gather and scatter phases separately (GraphReduce's design),
    /// so each active shard crosses the bus twice per superstep.
    pub stream_passes: u32,
}

impl OocEngine {
    /// An engine on one K40 with the paper's non-peer PCIe numbers.
    pub fn k40() -> Self {
        OocEngine {
            device: Device::new(0, HardwareProfile::k40()),
            pcie_gb_s: 6.0,
            pcie_latency_us: 25.0,
            shard_edges: 1 << 22,
            stream_passes: 2,
        }
    }

    /// An engine whose fixed overheads are shrunk by `2^shift`, matching a
    /// dataset that was shrunk by the same factor (dimensional scaling).
    pub fn k40_scaled(shift: u32) -> Self {
        let s = (1u64 << shift) as f64;
        OocEngine {
            device: Device::new(0, HardwareProfile::k40().with_overhead_scale(s)),
            pcie_latency_us: 25.0 / s,
            ..Self::k40()
        }
    }

    /// Run `program` over `graph` (optionally from `src`). Values are
    /// returned in vertex order.
    pub fn run<V: Id, O: Id, P: OocProgram>(
        &mut self,
        graph: &Csr<V, O>,
        program: &P,
        src: Option<V>,
    ) -> Result<(OocReport, Vec<P::Val>)> {
        let n = graph.n_vertices();
        let src_idx = src.map(|s| s.idx());
        self.device.reset_clock();
        let mut vals: Vec<P::Val> = (0..n).map(|v| program.init(v, n, src_idx)).collect();
        let mut active: Vec<bool> = (0..n).map(|v| program.initially_active(v, src_idx)).collect();

        // Shard boundaries: contiguous source ranges of ~shard_edges edges.
        let mut shards: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let mut end = start;
            let mut edges = 0usize;
            while end < n && (edges < self.shard_edges || end == start) {
                edges += graph.degree(V::from_usize(end));
                end += 1;
            }
            shards.push(start..end);
            start = end;
        }

        let mut stream_time_us = 0.0f64;
        let mut streamed_bytes = 0u64;
        let mut supersteps = 0usize;
        let edge_bytes = (V::BYTES + O::BYTES / 2 + if graph.is_weighted() { 4 } else { 0 }) as u64;

        while active.iter().any(|&a| a) && supersteps < program.max_supersteps() {
            let mut accs: Vec<P::Acc> = vec![program.identity(); n];
            let mut received = vec![false; n];
            for shard in &shards {
                // Does this shard contain any active source? (the host-side
                // activity filter GraphReduce uses to skip shards)
                if !active[shard.clone()].iter().any(|&a| a) {
                    continue;
                }
                let shard_edge_count: usize =
                    shard.clone().map(|v| graph.degree(V::from_usize(v))).sum();
                // --- stream the shard over PCIe (the bottleneck); GAS
                // engines pay this once per phase ---
                let bytes = shard_edge_count as u64 * edge_bytes * self.stream_passes as u64;
                let cost = self.pcie_latency_us * self.stream_passes as f64
                    + bytes as f64 / (self.pcie_gb_s * 1e3);
                self.device.charge(COMPUTE_STREAM, cost, 0.0)?;
                stream_time_us += cost;
                streamed_bytes += bytes;
                // --- gather on the GPU ---
                self.device.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                    let mut edges = 0u64;
                    for u in shard.clone() {
                        if !active[u] {
                            continue;
                        }
                        let uid = V::from_usize(u);
                        let deg = graph.degree(uid);
                        for (v, w) in graph.neighbors_weighted(uid) {
                            edges += 1;
                            let msg = program.scatter(vals[u], w, deg);
                            accs[v.idx()] = program.combine(accs[v.idx()], msg);
                            received[v.idx()] = true;
                        }
                    }
                    ((), edges)
                })?;
            }
            // --- apply ---
            self.device.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
                for v in 0..n {
                    let (nv, act) = program.apply(vals[v], accs[v], received[v], n);
                    vals[v] = nv;
                    active[v] = act;
                }
                ((), n as u64)
            })?;
            supersteps += 1;
        }

        Ok((
            OocReport {
                program: P::NAME,
                supersteps,
                sim_time_us: self.device.now(),
                stream_time_us,
                streamed_bytes,
            },
            vals,
        ))
    }
}

/// BFS as a GAS program.
#[derive(Debug, Clone, Copy, Default)]
pub struct OocBfs;

impl OocProgram for OocBfs {
    type Val = u32;
    type Acc = u32;
    const NAME: &'static str = "BFS";

    fn init(&self, v: usize, _n: usize, src: Option<usize>) -> u32 {
        if Some(v) == src {
            0
        } else {
            u32::MAX
        }
    }
    fn initially_active(&self, v: usize, src: Option<usize>) -> bool {
        Some(v) == src
    }
    fn identity(&self) -> u32 {
        u32::MAX
    }
    fn scatter(&self, u_val: u32, _w: u32, _deg: usize) -> u32 {
        u_val.saturating_add(1)
    }
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, old: u32, acc: u32, received: bool, _n: usize) -> (u32, bool) {
        if received && acc < old {
            (acc, true)
        } else {
            (old, false)
        }
    }
}

/// SSSP as a GAS program (Bellman–Ford).
#[derive(Debug, Clone, Copy, Default)]
pub struct OocSssp;

impl OocProgram for OocSssp {
    type Val = u32;
    type Acc = u32;
    const NAME: &'static str = "SSSP";

    fn init(&self, v: usize, _n: usize, src: Option<usize>) -> u32 {
        if Some(v) == src {
            0
        } else {
            u32::MAX
        }
    }
    fn initially_active(&self, v: usize, src: Option<usize>) -> bool {
        Some(v) == src
    }
    fn identity(&self) -> u32 {
        u32::MAX
    }
    fn scatter(&self, u_val: u32, w: u32, _deg: usize) -> u32 {
        u_val.saturating_add(w)
    }
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, old: u32, acc: u32, received: bool, _n: usize) -> (u32, bool) {
        if received && acc < old {
            (acc, true)
        } else {
            (old, false)
        }
    }
}

/// Connected components as a GAS program (min-label propagation).
#[derive(Debug, Clone, Copy, Default)]
pub struct OocCc;

impl OocProgram for OocCc {
    type Val = u32;
    type Acc = u32;
    const NAME: &'static str = "CC";

    fn init(&self, v: usize, _n: usize, _src: Option<usize>) -> u32 {
        v as u32
    }
    fn initially_active(&self, _v: usize, _src: Option<usize>) -> bool {
        true
    }
    fn identity(&self) -> u32 {
        u32::MAX
    }
    fn scatter(&self, u_val: u32, _w: u32, _deg: usize) -> u32 {
        u_val
    }
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, old: u32, acc: u32, received: bool, _n: usize) -> (u32, bool) {
        if received && acc < old {
            (acc, true)
        } else {
            (old, false)
        }
    }
}

/// PageRank as a GAS program (fixed iteration count, damping 0.85).
#[derive(Debug, Clone, Copy)]
pub struct OocPagerank {
    /// Damping factor.
    pub damping: f32,
    /// Number of iterations.
    pub iters: usize,
}

impl Default for OocPagerank {
    fn default() -> Self {
        OocPagerank { damping: 0.85, iters: 20 }
    }
}

impl OocProgram for OocPagerank {
    type Val = f32;
    type Acc = f32;
    const NAME: &'static str = "PR";

    fn init(&self, _v: usize, n: usize, _src: Option<usize>) -> f32 {
        1.0 / n as f32
    }
    fn initially_active(&self, _v: usize, _src: Option<usize>) -> bool {
        true
    }
    fn identity(&self) -> f32 {
        0.0
    }
    fn scatter(&self, u_val: f32, _w: u32, deg: usize) -> f32 {
        u_val / deg as f32
    }
    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }
    fn apply(&self, _old: f32, acc: f32, _received: bool, n: usize) -> (f32, bool) {
        ((1.0 - self.damping) / n as f32 + self.damping * acc, true)
    }
    fn max_supersteps(&self) -> usize {
        self.iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_gen::weights::add_paper_weights;
    use mgpu_gen::gnm;
    use mgpu_graph::{Csr, GraphBuilder};
    use mgpu_primitives::reference;

    fn graph() -> Csr<u32, u64> {
        GraphBuilder::undirected(&gnm(150, 700, 19))
    }

    #[test]
    fn ooc_bfs_matches_reference() {
        let g = graph();
        let mut engine = OocEngine::k40();
        let (report, vals) = engine.run(&g, &OocBfs, Some(0u32)).unwrap();
        assert_eq!(vals, reference::bfs(&g, 0u32));
        assert!(report.stream_time_us > 0.0);
    }

    #[test]
    fn ooc_sssp_matches_reference() {
        let mut coo = gnm(100, 500, 23);
        add_paper_weights(&mut coo, 4);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let mut engine = OocEngine::k40();
        let (_, vals) = engine.run(&g, &OocSssp, Some(3u32)).unwrap();
        assert_eq!(vals, reference::sssp(&g, 3u32));
    }

    #[test]
    fn ooc_cc_matches_reference() {
        let g = graph();
        let mut engine = OocEngine::k40();
        let (_, vals) = engine.run(&g, &OocCc, None).unwrap();
        let expect: Vec<u32> = reference::cc(&g).iter().map(|&c| c as u32).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn ooc_pagerank_matches_power_iteration() {
        let g = graph();
        let mut engine = OocEngine::k40();
        let (report, vals) =
            engine.run(&g, &OocPagerank { damping: 0.85, iters: 15 }, None).unwrap();
        assert_eq!(report.supersteps, 15);
        let expect = reference::pagerank(&g, 0.85, 15);
        for (i, (&a, &b)) in vals.iter().zip(&expect).enumerate() {
            assert!((a as f64 - b).abs() < 1e-4 * (b.abs() + 1e-9), "vertex {i}");
        }
    }

    #[test]
    fn streaming_dominates_runtime() {
        // With small shards every superstep re-streams the graph: PCIe time
        // should dominate — the §II-A argument against out-of-core.
        let g = graph();
        let mut engine = OocEngine::k40();
        engine.shard_edges = 64;
        let (report, _) = engine.run(&g, &OocPagerank::default(), None).unwrap();
        assert!(
            report.stream_time_us > 0.5 * report.sim_time_us,
            "stream {} of total {}",
            report.stream_time_us,
            report.sim_time_us
        );
    }

    #[test]
    fn inactive_shards_are_skipped() {
        // BFS from a corner of a path graph only activates a frontier of
        // one vertex per superstep: most shards are skipped, so far less
        // than |E|·S bytes stream.
        let coo = mgpu_gen::smallworld::chain(256);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let mut engine = OocEngine::k40();
        engine.shard_edges = 8;
        let (report, vals) = engine.run(&g, &OocBfs, Some(0u32)).unwrap();
        assert_eq!(vals, reference::bfs(&g, 0u32));
        let full_stream = (g.n_edges() * 8) as u64 * report.supersteps as u64;
        assert!(report.streamed_bytes < full_stream / 4);
    }
}
