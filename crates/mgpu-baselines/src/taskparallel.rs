//! Task-parallel betweenness centrality (McLaughlin & Bader, SC '14).
//!
//! Their system "distributed BFS work for different source vertices to
//! different nodes. Its performance scales well in large part due to its
//! novel use of task parallelism, but a task-parallel strategy is not
//! applicable to most graph algorithms. Their framework also duplicates
//! the graph across GPUs, limiting its scalability to graphs that can fit
//! on 1 GPU" (§II-A). Both properties are mechanical here:
//!
//! * each device holds a **full replica** of the graph (a real reservation
//!   against its memory pool — too big a graph and the run fails with
//!   `OutOfMemory`, unlike the partitioned framework);
//! * sources are distributed round-robin; devices never communicate, so
//!   scaling over sources is embarrassingly parallel.

use mgpu_graph::{Csr, Id};
use vgpu::{Device, HardwareProfile, KernelKind, Result, SimSystem, VgpuError, COMPUTE_STREAM};

/// Task-parallel multi-source BC over full graph replicas.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskParallelBc;

/// Outcome of a task-parallel BC run.
#[derive(Debug, Clone)]
pub struct TaskParallelReport {
    /// Number of devices used.
    pub n_devices: usize,
    /// Sources processed.
    pub n_sources: usize,
    /// Simulated makespan (max over devices).
    pub sim_time_us: f64,
    /// Peak memory per device — ~the whole graph, the scalability limiter.
    pub peak_memory_per_device: u64,
    /// Devices whose full-graph replica did not fit; their share of the
    /// sources is re-routed to the devices that did fit. The run only fails
    /// when *no* device can hold a replica.
    pub devices_skipped: usize,
    /// Source passes dropped because the per-source scratch did not fit on
    /// the assigned device — skipped work is counted, never silent.
    pub sources_skipped: usize,
}

impl TaskParallelBc {
    /// Accumulate single-source BC over `sources`, distributing sources
    /// round-robin over `n_devices` devices that each replicate `graph`.
    pub fn run<V: Id, O: Id>(
        &self,
        graph: &Csr<V, O>,
        sources: &[V],
        n_devices: usize,
        profile: HardwareProfile,
    ) -> Result<(TaskParallelReport, Vec<f64>)> {
        self.run_on(SimSystem::homogeneous(n_devices, profile), graph, sources)
    }

    /// [`Self::run`] on a caller-built system (e.g. devices with unequal
    /// memory capacities). A device that cannot hold the full replica is
    /// *skipped and counted* rather than failing the whole run; only when no
    /// device fits does the memory wall of §II-A surface as `OutOfMemory`.
    pub fn run_on<V: Id, O: Id>(
        &self,
        mut system: SimSystem,
        graph: &Csr<V, O>,
        sources: &[V],
    ) -> Result<(TaskParallelReport, Vec<f64>)> {
        let n_devices = system.n_devices();
        let n = graph.n_vertices();
        let scratch_bytes = (n * 16) as u64; // depth/sigma/delta/centrality
                                             // Full replica on every device — the memory wall of §II-A. A replica
                                             // that does not fit skips the device instead of aborting the run.
        let mut replicas = Vec::with_capacity(n_devices);
        let mut fitted: Vec<usize> = Vec::new();
        let mut last_oom: Option<VgpuError> = None;
        for (i, dev) in system.devices.iter_mut().enumerate() {
            match dev.pool().reserve_external(graph.bytes()) {
                Ok(r) => {
                    replicas.push(r);
                    fitted.push(i);
                }
                Err(e @ VgpuError::OutOfMemory { .. }) => last_oom = Some(e),
                Err(e) => return Err(e),
            }
        }
        let devices_skipped = n_devices - fitted.len();
        if fitted.is_empty() {
            return Err(last_oom.expect("no devices at all"));
        }

        let mut sources_skipped = 0usize;
        let mut centrality = vec![0.0f64; n];
        for (i, &src) in sources.iter().enumerate() {
            let dev = &mut system.devices[fitted[i % fitted.len()]];
            // Per-source scratch is a real reservation too: a source whose
            // scratch does not fit is dropped and counted, never silent.
            let scratch = match dev.pool().reserve_external(scratch_bytes) {
                Ok(r) => r,
                Err(VgpuError::OutOfMemory { .. }) => {
                    sources_skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let contribution = run_one_source(dev, graph, src)?;
            drop(scratch);
            for (c, x) in centrality.iter_mut().zip(contribution) {
                *c += x;
            }
        }
        let report = TaskParallelReport {
            n_devices,
            n_sources: sources.len(),
            sim_time_us: system.makespan_us(),
            peak_memory_per_device: system.peak_memory_per_device(),
            devices_skipped,
            sources_skipped,
        };
        Ok((report, centrality))
    }
}

/// One Brandes source pass on one device (forward BFS with σ counting, then
/// dependency accumulation), metered like any other kernel sequence.
fn run_one_source<V: Id, O: Id>(dev: &mut Device, g: &Csr<V, O>, src: V) -> Result<Vec<f64>> {
    let n = g.n_vertices();
    const INF: u32 = u32::MAX;
    let mut depth = vec![INF; n];
    let mut sigma = vec![0.0f64; n];
    let mut frontier = vec![src];
    depth[src.idx()] = 0;
    sigma[src.idx()] = 1.0;
    let mut levels: Vec<Vec<V>> = vec![frontier.clone()];
    let mut d = 0u32;
    while !frontier.is_empty() {
        let next = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            let mut next = Vec::new();
            let mut edges = 0u64;
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    edges += 1;
                    if depth[u.idx()] == INF {
                        depth[u.idx()] = d + 1;
                        next.push(u);
                    }
                    if depth[u.idx()] == d + 1 {
                        sigma[u.idx()] += sigma[v.idx()];
                    }
                }
            }
            (next, edges)
        })?;
        if next.is_empty() {
            break;
        }
        levels.push(next.clone());
        frontier = next;
        d += 1;
    }
    let mut delta = vec![0.0f64; n];
    let mut centrality = vec![0.0f64; n];
    for level in levels.iter().rev() {
        let level = level.clone();
        dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            let mut edges = 0u64;
            for &v in &level {
                for &u in g.neighbors(v) {
                    edges += 1;
                    if depth[u.idx()] == depth[v.idx()] + 1 && sigma[u.idx()] > 0.0 {
                        delta[v.idx()] += sigma[v.idx()] / sigma[u.idx()] * (1.0 + delta[u.idx()]);
                    }
                }
                if v != src {
                    centrality[v.idx()] += delta[v.idx()];
                }
            }
            ((), edges)
        })?;
    }
    Ok(centrality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_gen::gnm;
    use mgpu_graph::GraphBuilder;
    use mgpu_primitives::reference;
    use vgpu::Interconnect;

    fn graph() -> Csr<u32, u64> {
        GraphBuilder::undirected(&gnm(80, 320, 55))
    }

    #[test]
    fn accumulates_brandes_over_sources() {
        let g = graph();
        let sources = [0u32, 3, 17];
        let (report, bc) = TaskParallelBc.run(&g, &sources, 2, HardwareProfile::k40()).unwrap();
        assert_eq!(report.n_sources, 3);
        let mut expect = vec![0.0f64; 80];
        for &s in &sources {
            for (e, x) in expect.iter_mut().zip(reference::bc(&g, s)) {
                *e += x;
            }
        }
        for (v, (&a, &b)) in bc.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn scales_over_sources_with_more_devices() {
        let g = graph();
        let sources: Vec<u32> = (0..16).collect();
        let (r1, _) = TaskParallelBc.run(&g, &sources, 1, HardwareProfile::k40()).unwrap();
        let (r4, _) = TaskParallelBc.run(&g, &sources, 4, HardwareProfile::k40()).unwrap();
        assert!(
            r4.sim_time_us < r1.sim_time_us / 2.0,
            "task parallelism: {} vs {}",
            r4.sim_time_us,
            r1.sim_time_us
        );
    }

    #[test]
    fn replication_hits_the_memory_wall() {
        let g = graph();
        let small = HardwareProfile::k40().with_capacity(g.bytes() / 2);
        match TaskParallelBc.run(&g, &[0u32], 2, small) {
            Err(VgpuError::OutOfMemory { .. }) => {}
            other => panic!("expected the replication memory wall, got {other:?}"),
        }
    }

    #[test]
    fn undersized_device_is_skipped_and_counted_not_fatal() {
        let g = graph();
        let sources: Vec<u32> = (0..6).collect();
        let big = HardwareProfile::k40();
        let small = HardwareProfile::k40().with_capacity(g.bytes() / 2);
        let system = SimSystem::new(vec![big, small], Interconnect::pcie3(2, 4)).unwrap();
        let (report, bc) = TaskParallelBc.run_on(system, &g, &sources).unwrap();
        assert_eq!(report.devices_skipped, 1, "the half-capacity device is skipped");
        assert_eq!(report.sources_skipped, 0, "re-routed sources all complete");
        // the skipped device changes nothing about the answer
        let (full, bc_full) = TaskParallelBc.run(&g, &sources, 1, HardwareProfile::k40()).unwrap();
        assert_eq!(full.devices_skipped, 0);
        assert_eq!(bc, bc_full);
    }

    #[test]
    fn unfittable_scratch_skips_sources_and_counts_them() {
        let g = graph();
        // replica fits; the per-source scratch (80 vertices * 16 B) does not
        let profile = HardwareProfile::k40().with_capacity(g.bytes() + 100);
        let (report, bc) = TaskParallelBc.run(&g, &[0u32, 5, 9], 1, profile).unwrap();
        assert_eq!(report.sources_skipped, 3, "every dropped source is counted");
        assert!(bc.iter().all(|&x| x == 0.0), "no silent partial contributions");
    }

    #[test]
    fn every_device_pays_full_graph_memory() {
        let g = graph();
        let (report, _) = TaskParallelBc.run(&g, &[0u32, 1], 2, HardwareProfile::k40()).unwrap();
        assert!(report.peak_memory_per_device >= g.bytes());
    }
}
