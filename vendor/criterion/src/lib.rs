//! Offline vendored shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! API-compatible stand-ins for its external dependencies. This shim keeps the
//! `criterion_group!`/`criterion_main!`/`benchmark_group` API shape and backs
//! it with a small median-of-samples wall-clock harness: each benchmark is
//! warmed up, then timed over `sample_size` samples (batching very fast bodies
//! so one sample is at least ~2 ms), and the median per-iteration time is
//! printed together with optional element throughput.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the body.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and batch sizing: aim for >= ~2 ms per sample so timer
        // resolution is irrelevant.
        let start = Instant::now();
        hint::black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(body());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / median_ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<50} time: {}{}", fmt_ns(median_ns), thrpt);
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        report(&full, b.median_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b, input);
        report(&full, b.median_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: default_sample_size(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: default_sample_size(), median_ns: 0.0 };
        f(&mut b);
        report(name, b.median_ns, None);
        self
    }
}

fn default_sample_size() -> usize {
    std::env::var("BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { samples: 3, median_ns: 0.0 };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("advance", "rmat13").into_id(), "advance/rmat13");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
