//! Offline vendored shim for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.
//!
//! Deterministic per seed. The stream is a faithful ChaCha8 keystream (RFC
//! 7539 quarter-round, 8 rounds, 64-bit counter) keyed from the 32-byte seed;
//! it is not guaranteed to match upstream `rand_chacha` word order, and nothing
//! in the workspace requires that — only seed-determinism.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = inp.0.wrapping_add(*inp.1);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from distinct seeds should diverge");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v: u32 = rng.gen_range(0..65);
        assert!(v < 65);
    }

    #[test]
    fn keystream_advances_past_one_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
