//! Offline vendored shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! API-compatible stand-ins for its external dependencies (see `vendor/` in the
//! repo root). This one maps `parking_lot::Mutex`/`RwLock` onto the std
//! primitives with parking_lot's no-poisoning semantics: a panic while a guard
//! is held does not poison the lock for later callers.

use std::sync::{self, TryLockError};

/// A mutex with `parking_lot`'s API shape (no poisoning, no `Result` from
/// `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
