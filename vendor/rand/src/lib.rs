//! Offline vendored shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! API-compatible stand-ins for its external dependencies. This crate provides
//! `RngCore`, `SeedableRng`, and the `Rng` extension trait with `gen`,
//! `gen_range` and `gen_bool`. Streams are deterministic per seed but are NOT
//! guaranteed to match upstream `rand` output bit-for-bit — nothing in the
//! workspace depends on upstream streams, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same construction as
    /// upstream `rand_core`, though the resulting stream need not match).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
                let span = (hi_inclusive as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire): uniform over [0, span].
                let span = span + 1;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return lo.wrapping_add((((v as u128 * span as u128) >> 64) as u64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
                let off = <$u>::sample_in(rng, 0, hi_inclusive.wrapping_sub(lo) as $u);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi_inclusive - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        lo + f32::sample_standard(rng) * (hi_inclusive - lo)
    }
}

/// Range forms accepted by `gen_range` (half-open and inclusive).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + SampleRangeBound> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_in(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_in(rng, lo, hi)
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait SampleRangeBound: Copy {
    fn dec(self) -> Self;
}

macro_rules! impl_bound_int {
    ($($t:ty),*) => {$(
        impl SampleRangeBound for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_bound_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRangeBound for f64 {
    fn dec(self) -> Self {
        self // half-open float ranges already exclude the bound via [0,1) sampling
    }
}

impl SampleRangeBound for f32 {
    fn dec(self) -> Self {
        self
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    fn fill<T: FillableSlice + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Slices fillable by `Rng::fill`.
pub trait FillableSlice {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl FillableSlice for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl FillableSlice for [u32] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u32();
        }
    }
}

impl FillableSlice for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

pub mod rngs {
    //! Small self-contained RNGs (xoshiro256** core).

    use super::{RngCore, SeedableRng};

    /// A fast non-cryptographic RNG standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xfe01]
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=64);
            assert!(w <= 64);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
