//! Offline vendored shim for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! API-compatible stand-ins for its external dependencies. This shim executes
//! `into_par_iter().flat_map_iter().collect()` pipelines on scoped std threads
//! (contiguous chunks, results concatenated in index order, so output matches
//! the sequential order exactly) and maps `par_sort_by_key` onto the std
//! stable sort.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

fn worker_count(items: usize) -> usize {
    if items < 2 {
        return 1;
    }
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(8).min(items)
}

/// Sources convertible into a "parallel" iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// An eagerly materialized parallel-iterator source.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<T, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        FlatMapIter { items: self.items, f }
    }

    pub fn map<U, F>(self, f: F) -> MapIter<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        MapIter { items: self.items, f }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Run `f` over contiguous chunks of `items` on scoped threads; concatenate
/// the per-chunk outputs in chunk order, which reproduces sequential order.
fn run_chunked<T, R, F>(items: Vec<T>, per_item: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Vec<R> + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.into_iter().flat_map(&per_item).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let per_item = &per_item;
    let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().flat_map(per_item).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
    });
    let total = out.iter().map(Vec::len).sum();
    let mut flat = Vec::with_capacity(total);
    for part in out.iter_mut() {
        flat.append(part);
    }
    flat
}

/// Result of `flat_map_iter`: collected in parallel, order-preserving.
pub struct FlatMapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> FlatMapIter<T, F>
where
    T: Send,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn collect<C: FromIterator<U::Item>>(self) -> C {
        let f = self.f;
        run_chunked(self.items, |item| f(item).into_iter().collect::<Vec<_>>())
            .into_iter()
            .collect()
    }
}

/// Result of `map`: collected in parallel, order-preserving.
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> MapIter<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let f = self.f;
        run_chunked(self.items, |item| vec![f(item)]).into_iter().collect()
    }
}

/// Parallel sort extension; the shim delegates to the std stable sort, which
/// produces the same ordering rayon's `par_sort_by_key` guarantees.
pub trait ParallelSliceMut<T: Send> {
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        self.sort_by_key(f);
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn flat_map_iter_preserves_sequential_order() {
        let par: Vec<usize> =
            (0..100usize).into_par_iter().flat_map_iter(|i| vec![i * 2, i * 2 + 1]).collect();
        let seq: Vec<usize> = (0..100usize).flat_map(|i| vec![i * 2, i * 2 + 1]).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_preserves_order() {
        let par: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (0..1000usize).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_sort_by_key_sorts() {
        let mut v = vec![(3, 'a'), (1, 'b'), (2, 'c'), (1, 'd')];
        v.par_sort_by_key(|&(k, _)| k);
        assert_eq!(v, vec![(1, 'b'), (1, 'd'), (2, 'c'), (3, 'a')]);
    }

    #[test]
    fn empty_source_collects_empty() {
        let v: Vec<usize> = (0..0usize).into_par_iter().flat_map_iter(|i| vec![i]).collect();
        assert!(v.is_empty());
    }
}
