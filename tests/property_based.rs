//! Property-based tests (proptest) on the core invariants listed in
//! DESIGN.md §6: partitioner invariants, CSR round-trips, frontier
//! conservation through the enactor, and result equivalence to references
//! under arbitrary graphs, partitions and GPU counts.

use proptest::prelude::*;

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::graph::{Coo, Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{
    DistGraph, Duplication, PartitionQuality, Partitioner, RandomPartitioner,
};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, sssp::gather_dists, Bfs, Cc, Sssp,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

/// Arbitrary small weighted graph: vertex count, edge list, weights.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u32>)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..120);
        let weights = prop::collection::vec(0u32..65, 120);
        (Just(n), edges, weights)
    })
}

fn build(n: usize, edges: &[(u32, u32)], weights: &[u32]) -> Csr<u32, u64> {
    let w = weights[..edges.len()].to_vec();
    GraphBuilder::undirected(&Coo::from_edges(n, edges.to_vec(), Some(w)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_covers_every_vertex_exactly_once(
        (n, edges, weights) in arb_graph(),
        n_parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let owner = RandomPartitioner { seed }.assign(&g, n_parts);
        prop_assert_eq!(owner.len(), n);
        prop_assert!(owner.iter().all(|&o| (o as usize) < n_parts));
        let q = PartitionQuality::measure(&g, &owner, n_parts);
        prop_assert_eq!(q.vertices.iter().sum::<usize>(), n);
        prop_assert_eq!(q.edges.iter().sum::<usize>(), g.n_edges());
    }

    #[test]
    fn dup_all_subgraphs_partition_the_edges(
        (n, edges, weights) in arb_graph(),
        n_parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_parts, Duplication::All);
        let total: usize = dist.parts.iter().map(|p| p.n_edges()).sum();
        prop_assert_eq!(total, g.n_edges(), "every edge on exactly one GPU");
        for part in &dist.parts {
            prop_assert_eq!(part.n_vertices(), n, "duplicate-all vertex space");
        }
        let owned: usize = dist.parts.iter().map(|p| p.n_local).sum();
        prop_assert_eq!(owned, n);
    }

    #[test]
    fn one_hop_conversion_tables_are_consistent(
        (n, edges, weights) in arb_graph(),
        n_parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_parts, Duplication::OneHop);
        for v in 0..n as u32 {
            let (gpu, local) = dist.locate(v);
            let part = &dist.parts[gpu];
            prop_assert!(part.is_owned(local));
            prop_assert_eq!(part.to_global(local), v, "locate/to_global round trip");
        }
        for part in &dist.parts {
            for l in 0..part.n_vertices() as u32 {
                let gl = part.to_global(l);
                prop_assert_eq!(part.from_global(gl), Some(l), "global resolution round trip");
            }
        }
    }

    #[test]
    fn csr_transpose_is_involutive(
        (n, edges, weights) in arb_graph(),
    ) {
        let g = build(n, &edges, &weights);
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn mgpu_bfs_equals_reference_on_arbitrary_graphs(
        (n, edges, weights) in arb_graph(),
        n_gpus in 1usize..5,
        seed in 0u64..1000,
        src_pick in 0usize..100,
    ) {
        let g = build(n, &edges, &weights);
        let src = (src_pick % n) as u32;
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        runner.enact(Some(src)).unwrap();
        prop_assert_eq!(gather_labels(&runner, &dist), reference::bfs(&g, src));
    }

    #[test]
    fn mgpu_sssp_equals_dijkstra_on_arbitrary_graphs(
        (n, edges, weights) in arb_graph(),
        n_gpus in 1usize..4,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
        runner.enact(Some(0u32)).unwrap();
        prop_assert_eq!(gather_dists(&runner, &dist), reference::sssp(&g, 0u32));
    }

    #[test]
    fn mgpu_cc_equals_union_find_on_arbitrary_graphs(
        (n, edges, weights) in arb_graph(),
        n_gpus in 1usize..4,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Cc, EnactConfig::default()).unwrap();
        runner.enact(None).unwrap();
        prop_assert_eq!(gather_components(&runner, &dist), reference::cc(&g));
    }

    #[test]
    fn bsp_counters_are_conserved(
        (n, edges, weights) in arb_graph(),
        n_gpus in 2usize..5,
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        // what is sent is received
        prop_assert_eq!(report.totals.h_bytes_sent, report.totals.h_bytes_recv);
        // wire format: every transmitted vertex costs id + label
        prop_assert_eq!(report.totals.h_bytes_sent, report.totals.h_vertices * 8);
        // simulated time is monotone and includes the sync overhead
        prop_assert!(report.sim_time_us >= report.iterations as f64);
    }
}
