//! Randomized property tests on the core invariants listed in DESIGN.md §6:
//! partitioner invariants, CSR round-trips, frontier conservation through the
//! enactor, and result equivalence to references under arbitrary graphs,
//! partitions and GPU counts.
//!
//! These were originally written with `proptest`; the offline build vendors
//! only a minimal `rand`, so each property is now driven by a seeded ChaCha
//! stream over the same input distribution (fixed trial count, deterministic
//! per seed — failures reproduce exactly).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::graph::{Coo, Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{
    DistGraph, Duplication, PartitionQuality, Partitioner, RandomPartitioner,
};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, sssp::gather_dists, Bfs, Cc, Sssp,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

const CASES: usize = 48;

/// Arbitrary small weighted graph: vertex count, edge list, weights.
fn arb_graph(rng: &mut ChaCha8Rng) -> (usize, Vec<(u32, u32)>, Vec<u32>) {
    let n = rng.gen_range(4usize..40);
    let m = rng.gen_range(0usize..120);
    let edges = (0..m).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))).collect();
    let weights = (0..120).map(|_| rng.gen_range(0u32..65)).collect();
    (n, edges, weights)
}

fn build(n: usize, edges: &[(u32, u32)], weights: &[u32]) -> Csr<u32, u64> {
    let w = weights[..edges.len()].to_vec();
    GraphBuilder::undirected(&Coo::from_edges(n, edges.to_vec(), Some(w)))
}

#[test]
fn partition_covers_every_vertex_exactly_once() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_parts = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let owner = RandomPartitioner { seed }.assign(&g, n_parts);
        assert_eq!(owner.len(), n);
        assert!(owner.iter().all(|&o| (o as usize) < n_parts));
        let q = PartitionQuality::measure(&g, &owner, n_parts);
        assert_eq!(q.vertices.iter().sum::<usize>(), n);
        assert_eq!(q.edges.iter().sum::<usize>(), g.n_edges());
    }
}

#[test]
fn dup_all_subgraphs_partition_the_edges() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA12);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_parts = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_parts, Duplication::All);
        let total: usize = dist.parts.iter().map(|p| p.n_edges()).sum();
        assert_eq!(total, g.n_edges(), "every edge on exactly one GPU");
        for part in &dist.parts {
            assert_eq!(part.n_vertices(), n, "duplicate-all vertex space");
        }
        let owned: usize = dist.parts.iter().map(|p| p.n_local).sum();
        assert_eq!(owned, n);
    }
}

#[test]
fn one_hop_conversion_tables_are_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA13);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_parts = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let dist =
            DistGraph::partition(&g, &RandomPartitioner { seed }, n_parts, Duplication::OneHop);
        for v in 0..n as u32 {
            let (gpu, local) = dist.locate(v);
            let part = &dist.parts[gpu];
            assert!(part.is_owned(local));
            assert_eq!(part.to_global(local), v, "locate/to_global round trip");
        }
        for part in &dist.parts {
            for l in 0..part.n_vertices() as u32 {
                let gl = part.to_global(l);
                assert_eq!(part.from_global(gl), Some(l), "global resolution round trip");
            }
        }
    }
}

#[test]
fn csr_transpose_is_involutive() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA14);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let g = build(n, &edges, &weights);
        assert_eq!(g.transpose().transpose(), g);
    }
}

#[test]
fn mgpu_bfs_equals_reference_on_arbitrary_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA15);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_gpus = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let src = (rng.gen_range(0usize..100) % n) as u32;
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        runner.enact(Some(src)).unwrap();
        assert_eq!(gather_labels(&runner, &dist), reference::bfs(&g, src));
    }
}

#[test]
fn mgpu_sssp_equals_dijkstra_on_arbitrary_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA16);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_gpus = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
        runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_dists(&runner, &dist), reference::sssp(&g, 0u32));
    }
}

#[test]
fn mgpu_cc_equals_union_find_on_arbitrary_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA17);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_gpus = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Cc, EnactConfig::default()).unwrap();
        runner.enact(None).unwrap();
        assert_eq!(gather_components(&runner, &dist), reference::cc(&g));
    }
}

#[test]
fn bsp_counters_are_conserved() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA18);
    for _ in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_gpus = rng.gen_range(2usize..5);
        let seed = rng.gen_range(0u64..1000);
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        // what is sent is received
        assert_eq!(report.totals.h_bytes_sent, report.totals.h_bytes_recv);
        // wire format: every transmitted vertex costs id + label
        assert_eq!(report.totals.h_bytes_sent, report.totals.h_vertices * 8);
        // simulated time is monotone and includes the sync overhead
        assert!(report.sim_time_us >= report.iterations as f64);
    }
}

/// Every wire encoding round-trips every id distribution — empty packages,
/// a single vertex, duplicates, unsorted ids, uniform and distinct payloads,
/// and multi-field tuple payloads. Forced encodings that are ineligible for
/// a distribution (bitmap without uniformity, delta without sorted ids) must
/// fall back rather than corrupt.
#[test]
fn every_package_encoding_round_trips_arbitrary_distributions() {
    use mgpu_graph_analytics::core::{Package, WireEncoding};
    const ENCODINGS: [WireEncoding; 5] = [
        WireEncoding::Legacy,
        WireEncoding::Auto,
        WireEncoding::List,
        WireEncoding::Bitmap,
        WireEncoding::DeltaVarint,
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0xA19);
    for case in 0..CASES * 4 {
        let space = rng.gen_range(1usize..400);
        let len = match case % 4 {
            0 => 0, // empty package
            1 => 1, // single vertex
            _ => rng.gen_range(0..=space.min(64)),
        };
        let mut ids: Vec<u32> = (0..len).map(|_| rng.gen_range(0..space as u32)).collect();
        match case % 3 {
            0 => {
                // sorted + deduplicated (the canonical monotone shape)
                ids.sort_unstable();
                ids.dedup();
            }
            1 => {
                // sorted with duplicates kept
                ids.sort_unstable();
            }
            _ => {} // arbitrary order, duplicates possible
        }
        let n = ids.len();
        let uniform_label = rng.gen_range(0u32..1000);
        let labels: Vec<u32> = if case % 2 == 0 {
            vec![uniform_label; n]
        } else {
            (0..n).map(|_| rng.gen_range(0u32..1000)).collect()
        };
        let pairs: Vec<(u32, u32)> =
            labels.iter().map(|&l| (l, rng.gen_range(0u32..space as u32))).collect();
        for enc in ENCODINGS {
            for space_arg in [Some(space), None] {
                let p = Package::encode(ids.clone(), labels.clone(), enc, space_arg, None);
                let (vs, ms) = p.decode();
                assert_eq!(vs.as_ref(), &ids[..], "{enc:?} ids, case {case}, space {space_arg:?}");
                assert_eq!(ms.as_ref(), &labels[..], "{enc:?} msgs, case {case}");
                assert_eq!(p.len(), n, "{enc:?} len, case {case}");
                assert!(p.wire_bytes() > 0 || n == 0, "{enc:?} must charge bytes, case {case}");

                let p = Package::encode(ids.clone(), pairs.clone(), enc, space_arg, None);
                let (vs, ms) = p.decode();
                assert_eq!(vs.as_ref(), &ids[..], "{enc:?} tuple ids, case {case}");
                assert_eq!(ms.as_ref(), &pairs[..], "{enc:?} tuple msgs, case {case}");
            }
        }
    }
}

/// Arbitrary graphs and configurations produce *well-formed* traces: spans
/// on one device stream never overlap and start monotonically (the stream
/// clock only moves forward), COMM span bytes reconcile with the device
/// counters, and every retry / spill / chunk / downgrade in the report's
/// logs is paired with a trace event of the matching kind.
#[test]
fn arbitrary_traced_runs_are_well_formed() {
    use mgpu_graph_analytics::core::{CommTopology, Profile};
    use mgpu_graph_analytics::vgpu::TraceKind;
    let mut rng = ChaCha8Rng::seed_from_u64(0xA1A);
    for case in 0..CASES {
        let (n, edges, weights) = arb_graph(&mut rng);
        let n_gpus = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..1000);
        let src = (rng.gen_range(0usize..100) % n) as u32;
        let g = build(n, &edges, &weights);
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, n_gpus, Duplication::All);
        let cfg = EnactConfig {
            tracing: true,
            comm_topology: if case % 2 == 0 {
                CommTopology::Direct
            } else {
                CommTopology::Butterfly
            },
            kernel_threads: Some(1 + case % 4),
            suppression: case % 3 == 0,
            ..Default::default()
        };
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Sssp, cfg).unwrap();
        let report = runner.enact(Some(src)).unwrap();
        let trace = report.trace.as_ref().expect("tracing was on");
        assert_eq!(trace.n_devices(), n_gpus, "case {case}");

        for (dev, events) in trace.per_device.iter().enumerate() {
            // Per-stream clocks: monotone starts, no overlapping spans.
            let mut stream_clock = std::collections::HashMap::new();
            let mut last_step = 0u32;
            for e in events {
                assert!(e.dur_us >= 0.0, "case {case}: negative span");
                assert!(e.start_us >= 0.0, "case {case}: span before t=0");
                let clock = stream_clock.entry(e.stream).or_insert(0.0f64);
                // BarrierWait spans describe idle gaps *behind* the stream
                // clock; everything else occupies the stream.
                if e.kind != TraceKind::BarrierWait {
                    assert!(
                        e.start_us >= *clock - 1e-9,
                        "case {case} dev {dev}: span {:?} at {} overlaps clock {}",
                        e.kind,
                        e.start_us,
                        clock
                    );
                    *clock = clock.max(e.start_us + e.dur_us);
                }
                assert!(e.superstep >= last_step, "case {case}: superstep went backwards");
                last_step = e.superstep;
            }
        }

        // COMM spans reconcile with the device counters (and everything
        // else — reconcile checks all buckets bitwise).
        let profile = Profile::from_trace(trace);
        profile.reconcile(&report).unwrap_or_else(|e| panic!("case {case}: {e}"));

        // Log ↔ event pairing.
        let rec = &report.recovery;
        assert_eq!(
            profile.total.retries,
            rec.kernel_retries + rec.transfer_retries,
            "case {case}: retries unpaired"
        );
        let gov = &report.governor;
        assert_eq!(profile.total.spills, gov.spill_events, "case {case}: spills unpaired");
        assert_eq!(profile.total.chunks, gov.chunked_advances, "case {case}: chunks unpaired");
        assert_eq!(
            profile.total.downgrades,
            gov.downgrades.len() as u64,
            "case {case}: downgrades unpaired"
        );
        assert_eq!(profile.total.spilled_bytes, gov.spilled_bytes, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// Frontier-representation equivalence (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// The unvisited-set representation is a wall-clock concern only: DOBFS
/// under `Sparse`, `Dense` and `Auto` frontiers must produce the same
/// labels, `same_simulation` reports, and byte-identical traces, at every
/// GPU count and kernel thread count. Charge identity is what makes the
/// bitmap backend safe to ship — any divergence here is a cost-model leak.
#[test]
fn frontier_representations_are_simulation_invisible() {
    use mgpu_graph_analytics::core::FrontierMode;
    use mgpu_graph_analytics::primitives::{dobfs::gather_labels as dobfs_labels, Dobfs};

    let mut rng = ChaCha8Rng::seed_from_u64(0xF40);
    for case in 0..6 {
        let (n, edges, weights) = arb_graph(&mut rng);
        let src = (rng.gen_range(0usize..100) % n) as u32;
        let g = build(n, &edges, &weights);
        let expect = reference::bfs(&g, src);

        for n_gpus in [2usize, 4, 8] {
            let mut dist =
                DistGraph::partition(&g, &RandomPartitioner { seed: 7 }, n_gpus, Duplication::All);
            dist.build_cscs();

            // (report, trace-jsonl, labels) per (mode, threads) run.
            let mut runs = Vec::new();
            for mode in [FrontierMode::Sparse, FrontierMode::Dense, FrontierMode::Auto] {
                for threads in [1usize, 4] {
                    let cfg = EnactConfig {
                        tracing: true,
                        kernel_threads: Some(threads),
                        ..EnactConfig::default()
                    };
                    let prim = Dobfs { frontier: mode, ..Dobfs::default() };
                    let sys = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
                    let mut runner = Runner::new(sys, &dist, prim, cfg).unwrap();
                    let report = runner.enact(Some(src)).unwrap();
                    let labels = dobfs_labels(&runner, &dist);
                    assert_eq!(
                        labels, expect,
                        "case {case}: {mode:?} x{n_gpus} t{threads} wrong labels"
                    );
                    let jsonl = report.trace.as_ref().unwrap().to_jsonl();
                    runs.push((format!("{mode:?} t{threads}"), report, jsonl));
                }
            }
            let (ref name0, ref rep0, ref trace0) = runs[0];
            for (name, rep, trace) in &runs[1..] {
                assert!(
                    rep0.same_simulation(rep),
                    "case {case} x{n_gpus}: {name} diverges from {name0} in sim report"
                );
                assert_eq!(
                    trace0, trace,
                    "case {case} x{n_gpus}: {name} trace not byte-identical to {name0}"
                );
            }
        }
    }
}

/// `Display for FaultPlan` is the exact inverse of `FaultPlan::parse`:
/// any plan — seeded-random (transient-only and with pressure sites) or
/// hand-built over every event kind — survives a display → parse round
/// trip event-for-event, and the re-displayed string is byte-identical.
/// This is the contract the chaos-soak shrinker relies on when it
/// minimizes failing plans through their textual form.
#[test]
fn fault_plan_display_parse_round_trips() {
    use mgpu_graph_analytics::vgpu::FaultPlan;

    let mut rng = ChaCha8Rng::seed_from_u64(0x7a15_0d15);
    for case in 0..CASES {
        let seed: u64 = rng.gen();
        let n_devices = rng.gen_range(1usize..9);
        let n_faults = rng.gen_range(0usize..12);
        let horizon = rng.gen_range(1u64..64);
        for plan in [
            FaultPlan::random(seed, n_devices, n_faults, horizon),
            FaultPlan::random_with_pressure(seed, n_devices, n_faults, horizon),
        ] {
            let spec = plan.to_string();
            let parsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("case {case}: `{spec}` failed to parse: {e}"));
            assert_eq!(parsed, plan, "case {case}: `{spec}` round-trips to a different plan");
            assert_eq!(parsed.to_string(), spec, "case {case}: re-display of `{spec}` differs");
        }
    }

    // One constructed plan covering every event kind the grammar knows,
    // including a fractional straggler delay (f64 display path).
    let plan = FaultPlan::new()
        .kernel_fail(0, 3)
        .transient_oom(1, 7)
        .straggle(2, 1, 12.5)
        .device_loss(3, 9)
        .transfer_fail(0, 1, 4)
        .transfer_timeout(2, 3, 6)
        .spill_fail(1, 0)
        .chunk_pass_fail(2, 5)
        .arena_lease_oom(3, 2);
    let spec = plan.to_string();
    let parsed = FaultPlan::parse(&spec).expect("constructed plan must parse");
    assert_eq!(parsed, plan);
    assert_eq!(parsed.to_string(), spec);

    // Whitespace-tolerant parsing still displays canonically.
    let padded: String = spec.split(',').map(|ev| format!(" {ev} ")).collect::<Vec<_>>().join(",");
    assert_eq!(FaultPlan::parse(&padded).expect("padded spec must parse"), plan);

    // The empty plan displays as the empty string and parses back empty.
    assert_eq!(FaultPlan::new().to_string(), "");
    assert!(FaultPlan::parse("").expect("empty spec is valid").is_empty());
}
