//! Concurrency-determinism property suite for the multi-tenant query
//! scheduler (`mgpu_core::service`).
//!
//! The service's core claim: scheduling is a *pure function* of
//! `(scheduler seed, submission order)`, and concurrent execution never
//! perturbs any query. Concretely, for a mixed BFS/SSSP/CC/BC workload
//! over one shared residency:
//!
//! * every query's `EnactReport` is `same_simulation`-bit-equal to the
//!   same spec enacted alone, at {2, 4, 8} GPUs × {direct, butterfly}
//!   broadcast topologies, across scheduler seeds;
//! * every query's harvested result words are identical to the solo run's;
//! * the schedule (waves, admission records) and all aggregates are
//!   identical at every worker-thread count — host threads are a pure
//!   wall-clock knob;
//! * different scheduler seeds may produce different wave packings but
//!   never different per-query results.

use mgpu_bench::service::{build_query_specs, parse_query_list, residency_bytes, QueryDesc};
use mgpu_core::{PressurePolicy, Service, ServicePolicy, ServiceReport};
use mgpu_graph_analytics::core::EnactReport;
use mgpu_graph_analytics::gen::preferential_attachment;
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, Partitioner, RandomPartitioner};
use mgpu_graph_analytics::vgpu::HardwareProfile;
use mgpu_graph_analytics::core::CommTopology;
use mgpu_graph_analytics::core::EnactConfig;

/// The heterogeneous mix every configuration runs: two traversal sources,
/// a weighted shortest path (plus a resilient-mode copy), centrality and
/// components — seven queries, three engines' worth of executor impls.
const MIX: &str = "bfs:0,sssp:1,cc,bc:2,bfs:3,sssp:0,sssp:2@resilient";

fn weighted_graph() -> Csr<u32, u64> {
    let mut coo = preferential_attachment(300, 5, 17);
    add_paper_weights(&mut coo, 9);
    GraphBuilder::undirected(&coo)
}

/// Solo reference: build and enact each spec directly, outside any
/// service, exactly as a single-tenant caller would.
fn solo_runs(specs: &[mgpu_core::QuerySpec<u32>]) -> Vec<(EnactReport, Vec<u64>)> {
    specs
        .iter()
        .map(|s| {
            let mut ex = (s.build)().expect("solo build");
            let rep = ex.enact(s.source).expect("solo enact");
            let values = ex.harvest();
            (rep, values)
        })
        .collect()
}

fn policy(seed: u64, workers: usize, lanes: usize) -> ServicePolicy {
    ServicePolicy {
        seed,
        workers,
        lanes,
        mem_cap: None,
        residency_bytes: 0,
        pressure: PressurePolicy::governed(),
    }
}

/// Assert every outcome of `rep` is bit-equal to its solo counterpart.
fn assert_matches_solo(rep: &ServiceReport, solo: &[(EnactReport, Vec<u64>)], label: &str) {
    assert!(rep.all_ok(), "{label}: all queries must succeed");
    assert_eq!(rep.outcomes.len(), solo.len());
    for (o, (srep, svals)) in rep.outcomes.iter().zip(solo) {
        let crep = o.result.as_ref().expect("ok");
        assert!(
            crep.same_simulation(srep),
            "{label}: query '{}' diverged from its solo run",
            o.name
        );
        assert_eq!(&o.values, svals, "{label}: query '{}' result words diverged", o.name);
    }
}

/// The schedule fingerprint that must be invariant across worker counts:
/// wave count, per-query wave assignment, admission records, aggregates.
fn schedule_fingerprint(rep: &ServiceReport) -> (usize, Vec<usize>, String, String) {
    (
        rep.waves,
        rep.outcomes.iter().map(|o| o.wave).collect(),
        format!("{:?}", rep.admission),
        format!("{:.6} {:.6}", rep.serial_sim_us, rep.concurrent_sim_us),
    )
}

#[test]
fn concurrent_mixed_queries_are_bit_equal_to_solo_runs_across_the_matrix() {
    let g = weighted_graph();
    let part = RandomPartitioner { seed: 3 };
    for gpus in [2usize, 4, 8] {
        for topology in [CommTopology::Direct, CommTopology::Butterfly] {
            let dist = DistGraph::partition(&g, &part, gpus, Duplication::All);
            let owner = part.assign(&g, gpus);
            let config = EnactConfig { comm_topology: topology, ..Default::default() };
            let descs = parse_query_list(MIX).unwrap();
            let specs =
                build_query_specs(&g, &dist, &owner, HardwareProfile::k40(), 0, config, &descs)
                    .unwrap();
            let solo = solo_runs(&specs);
            for seed in [0u64, 7, 99] {
                let label = format!("gpus={gpus} topo={topology:?} seed={seed}");
                let rep = Service::new(policy(seed, 1, 3)).run(&specs);
                assert_matches_solo(&rep, &solo, &label);
                assert!(rep.waves >= 3, "{label}: 7 queries over 3 lanes need >= 3 waves");
            }
        }
    }
}

#[test]
fn schedule_and_aggregates_are_invariant_across_worker_threads() {
    let g = weighted_graph();
    let part = RandomPartitioner { seed: 3 };
    let dist = DistGraph::partition(&g, &part, 4, Duplication::All);
    let owner = part.assign(&g, 4);
    let descs = parse_query_list(MIX).unwrap();
    let specs = build_query_specs(
        &g,
        &dist,
        &owner,
        HardwareProfile::k40(),
        0,
        EnactConfig::default(),
        &descs,
    )
    .unwrap();
    for seed in [0u64, 42] {
        let one = Service::new(policy(seed, 1, 3)).run(&specs);
        let four = Service::new(policy(seed, 4, 3)).run(&specs);
        assert_eq!(
            schedule_fingerprint(&one),
            schedule_fingerprint(&four),
            "seed {seed}: schedule must not depend on worker count"
        );
        for (a, b) in one.outcomes.iter().zip(four.outcomes.iter()) {
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(ra.same_simulation(rb), "query '{}' varied with workers", a.name);
            assert_eq!(a.values, b.values);
        }
    }
}

#[test]
fn scheduler_seeds_repack_waves_but_never_change_results() {
    let g = weighted_graph();
    let part = RandomPartitioner { seed: 3 };
    let dist = DistGraph::partition(&g, &part, 2, Duplication::All);
    let owner = part.assign(&g, 2);
    let descs = parse_query_list(MIX).unwrap();
    let specs = build_query_specs(
        &g,
        &dist,
        &owner,
        HardwareProfile::k40(),
        0,
        EnactConfig::default(),
        &descs,
    )
    .unwrap();
    let solo = solo_runs(&specs);
    let mut packings = std::collections::HashSet::new();
    for seed in 0u64..6 {
        let rep = Service::new(policy(seed, 1, 2)).run(&specs);
        assert_matches_solo(&rep, &solo, &format!("seed {seed}"));
        packings.insert(rep.outcomes.iter().map(|o| o.wave).collect::<Vec<_>>());
        // Re-running the same seed reproduces the identical schedule.
        let again = Service::new(policy(seed, 1, 2)).run(&specs);
        assert_eq!(schedule_fingerprint(&rep), schedule_fingerprint(&again));
    }
    assert!(
        packings.len() > 1,
        "six seeds over 2-lane waves should produce at least two distinct packings"
    );
}

#[test]
fn service_reports_carry_per_query_admission_and_bsp_attribution() {
    let g = weighted_graph();
    let part = RandomPartitioner { seed: 3 };
    let dist = DistGraph::partition(&g, &part, 2, Duplication::All);
    let owner = part.assign(&g, 2);
    let descs: Vec<QueryDesc> = parse_query_list("bfs:0,cc").unwrap();
    // Per-query BSP attribution rides the trace.
    let config = EnactConfig { tracing: true, ..Default::default() };
    let specs =
        build_query_specs(&g, &dist, &owner, HardwareProfile::k40(), 0, config, &descs).unwrap();
    let rb = residency_bytes(&dist);
    let pol = ServicePolicy { residency_bytes: rb, ..policy(1, 1, 2) };
    let rep = Service::new(pol).run(&specs);
    assert!(rep.all_ok());
    assert_eq!(rep.admission.len(), 2, "one admission record per query");
    for (a, o) in rep.admission.iter().zip(rep.outcomes.iter()) {
        assert_eq!(a.query, o.query);
        assert!(!a.rejected);
        assert!(a.estimated_bytes > rb, "estimate includes the residency plus a live footprint");
    }
    for o in &rep.outcomes {
        let r = o.result.as_ref().unwrap();
        let trace = r.trace.as_ref().expect("traced run records a per-query trace");
        let profile = mgpu_graph_analytics::core::Profile::from_trace(trace);
        profile.reconcile(r).expect("per-query BSP attribution reconciles with its report");
    }
}
