//! End-to-end tests of the asynchronous (Groute-style) enactor with
//! label-correcting primitives: results must reach the same fixpoint as the
//! BSP schedule, and the async schedule must shed the per-level barrier
//! cost on high-diameter graphs.

use mgpu_graph_analytics::core::{AsyncRunner, EnactConfig, Runner};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{gnm, grid2d};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{reference, Cc, Sssp};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

fn weighted_graph(seed: u64) -> Csr<u32, u64> {
    let mut coo = gnm(150, 700, seed);
    add_paper_weights(&mut coo, seed + 1);
    GraphBuilder::undirected(&coo)
}

#[test]
fn async_sssp_reaches_the_dijkstra_fixpoint() {
    let g = weighted_graph(91);
    let expect = reference::sssp(&g, 0u32);
    for n in [1usize, 2, 4] {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 4 }, n, Duplication::All);
        let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
        let mut runner = AsyncRunner::new(sys, &dist, Sssp).unwrap();
        runner.enact(Some(0u32)).unwrap();
        let dists: Vec<u32> = (0..g.n_vertices())
            .map(|v| {
                let (gpu, local) = dist.locate(v as u32);
                runner.state(gpu).dists[local as usize]
            })
            .collect();
        assert_eq!(dists, expect, "{n} devices");
    }
}

#[test]
fn async_sssp_is_repeatable_in_result_despite_schedule_nondeterminism() {
    let g = weighted_graph(92);
    let expect = reference::sssp(&g, 5u32);
    for _ in 0..5 {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 4 }, 3, Duplication::All);
        let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
        let mut runner = AsyncRunner::new(sys, &dist, Sssp).unwrap();
        runner.enact(Some(5u32)).unwrap();
        let dists: Vec<u32> = (0..g.n_vertices())
            .map(|v| {
                let (gpu, local) = dist.locate(v as u32);
                runner.state(gpu).dists[local as usize]
            })
            .collect();
        assert_eq!(dists, expect);
    }
}

#[test]
fn async_cc_reaches_the_union_find_fixpoint() {
    let coo = gnm(120, 150, 93); // sparse: several components
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let expect = reference::cc(&g);
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 6 }, 3, Duplication::All);
    let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    let mut runner = AsyncRunner::new(sys, &dist, Cc).unwrap();
    runner.enact(None).unwrap();
    let comp: Vec<usize> = (0..g.n_vertices())
        .map(|v| {
            let (gpu, local) = dist.locate(v as u32);
            runner.state(gpu).comp[local as usize] as usize
        })
        .collect();
    assert_eq!(comp, expect);
}

#[test]
fn async_drops_the_barrier_cost_on_high_diameter_sssp() {
    // A long path-like road graph: the BSP schedule pays l per level; the
    // async schedule does not (the Groute effect §II-A).
    let mut coo = grid2d(120, 4, 1.0, 7);
    add_paper_weights(&mut coo, 8);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 9 }, 2, Duplication::All);

    let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
    let mut bsp = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
    let bsp_report = bsp.enact(Some(0u32)).unwrap();

    let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
    let mut asy = AsyncRunner::new(sys, &dist, Sssp).unwrap();
    let asy_report = asy.enact(Some(0u32)).unwrap();

    // same answer
    let get = |r: &AsyncRunner<u32, u64, Sssp>, v: u32| {
        let (gpu, local) = dist.locate(v);
        r.state(gpu).dists[local as usize]
    };
    let expect = reference::sssp(&g, 0u32);
    for v in 0..g.n_vertices() as u32 {
        assert_eq!(get(&asy, v), expect[v as usize]);
    }
    // the async schedule avoids hundreds of barrier charges
    assert!(
        asy_report.totals.sync_time_us < bsp_report.totals.sync_time_us / 4.0,
        "async sync cost {} vs BSP {}",
        asy_report.totals.sync_time_us,
        bsp_report.totals.sync_time_us
    );
}
