//! Chaos-composition tests: the recovery machinery of ISSUE 8 exercised
//! where the seams meet.
//!
//! * Memory-pressure governing composes with transient kernel faults — one
//!   run can downgrade *and* retry, and both logs say so, without touching
//!   the results.
//! * The async enactor recovers transient kernel and transfer faults to the
//!   reference fixpoint, and turns a permanent device loss into a typed
//!   error instead of a hang.
//! * The butterfly collective degrades a superstep to a direct broadcast
//!   when a mid-stage link burst exhausts in-place retries, visibly in both
//!   the recovery log and the structured trace.
//! * `FaultPlan::remap` rewrites every event class onto the survivor id
//!   space after a failover, so post-failover faults land on the links and
//!   devices they were planned for.

use mgpu_graph_analytics::core::{
    AsyncRunner, CommTopology, EnactConfig, PressurePolicy, RecoveryPolicy, ResilientRunner, Runner,
};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{gnm, preferential_attachment};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, sssp::gather_dists, Bfs, Cc, Sssp,
};
use mgpu_graph_analytics::vgpu::{FaultPlan, HardwareProfile, SimSystem, VgpuError};

fn graph() -> Csr<u32, u64> {
    GraphBuilder::undirected(&preferential_attachment(400, 6, 11))
}

fn weighted_graph() -> Csr<u32, u64> {
    let mut coo = gnm(300, 1500, 23);
    add_paper_weights(&mut coo, 5);
    GraphBuilder::undirected(&coo)
}

fn resilient_config() -> EnactConfig {
    EnactConfig { recovery: RecoveryPolicy::resilient(), ..Default::default() }
}

// ---------------------------------------------------------------------------
// governor × transient faults
// ---------------------------------------------------------------------------

/// The governed configuration both pressure tests share: the
/// memory-hungriest scheme (so admission has something to walk) plus the
/// resilient recovery policy.
fn governed_config() -> EnactConfig {
    EnactConfig {
        alloc_scheme: Some(mgpu_graph_analytics::core::AllocScheme::Max),
        pressure: PressurePolicy::governed(),
        ..resilient_config()
    }
}

/// Shrink the per-device capacity geometrically from the unconstrained
/// Max-scheme peak until a fault-free governed SSSP run on `g` satisfies
/// `want`, returning the capacity and the capped clean baseline.
fn governed_cap(
    g: &Csr<u32, u64>,
    want: impl Fn(&mgpu_graph_analytics::core::GovernorLog) -> bool,
) -> (u64, Vec<u32>) {
    let (clean, _) =
        ResilientRunner::homogeneous(g, Sssp, 4, HardwareProfile::k40(), governed_config())
            .enact_with(Some(0u32), gather_dists)
            .unwrap();
    // The governed window sits between the static reservations and the
    // unconstrained peak — walk down from the peak in fine steps and stop
    // at the first hard-infeasible capacity.
    let peak = clean.peak_memory_per_device;
    let mut cap = peak;
    loop {
        let profile = HardwareProfile::k40().with_capacity(cap);
        match ResilientRunner::homogeneous(g, Sssp, 4, profile, governed_config())
            .enact_with(Some(0u32), gather_dists)
        {
            Ok((rep, dists)) if want(&rep.governor) => return (cap, dists),
            Ok(_) => cap = cap * 15 / 16,
            Err(VgpuError::OutOfMemory { .. }) => {
                panic!("hit the infeasible floor at {cap} B without the wanted governor activity")
            }
            Err(e) => panic!("capacity {cap}: unexpected error {e}"),
        }
    }
}

#[test]
fn governor_downgrades_compose_with_transient_kernel_faults() {
    let g = weighted_graph();
    let expect = reference::sssp(&g, 0u32);
    let (cap, clean_dists) = governed_cap(&g, |gov| !gov.is_quiet());
    assert_eq!(clean_dists, expect, "the capped fault-free baseline must already be correct");

    let profile = HardwareProfile::k40().with_capacity(cap);
    let run = || {
        ResilientRunner::homogeneous(&g, Sssp, 4, profile.clone(), governed_config())
            .with_fault_plan(FaultPlan::new().kernel_fail(0, 2).transient_oom(1, 4))
            .enact_with(Some(0u32), gather_dists)
            .unwrap()
    };
    let (r1, d1) = run();
    let (r2, d2) = run();
    assert_eq!(d1, clean_dists, "downgraded + retried run must match the capped baseline");
    assert_eq!(d1, d2, "the composed run must be deterministic");
    assert!(r1.same_simulation(&r2), "governing under faults must be bit-reproducible");
    assert!(!r1.governor.is_quiet(), "the governor must have acted under the cap");
    assert!(r1.recovery.kernel_retries >= 2, "both kernel transients retried in place");
    assert_eq!(r1.recovery.faults_injected, 2);
    assert!(r1.recovery.lost_devices.is_empty(), "transients must not cost a device");
}

#[test]
fn an_injected_spill_fault_surfaces_typed_from_an_unguarded_runner() {
    let g = weighted_graph();
    let (cap, _) = governed_cap(&g, |gov| gov.spill_events > 0);
    // Under the cap the governed fault-free run spills; fail every device's
    // first spill so whichever device spills first trips the fault.
    let mut plan = FaultPlan::new();
    for d in 0..4 {
        plan = plan.spill_fail(d, 0);
    }
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 4, Duplication::All);
    let mut sys = SimSystem::homogeneous(4, HardwareProfile::k40().with_capacity(cap));
    sys.attach_fault_plan(&plan);
    let config = EnactConfig { recovery: RecoveryPolicy::default(), ..governed_config() };
    let mut runner = Runner::new(sys, &dist, Sssp, config).unwrap();
    match runner.enact(Some(0u32)) {
        Err(VgpuError::TransferFailed { from, to }) => {
            assert_eq!(from, to, "a spill is a device↔host staging transfer");
        }
        Ok(_) => panic!("the capped run must spill and hit the planned spill fault"),
        Err(other) => panic!("expected TransferFailed from the spill fault, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// async enactor recovery
// ---------------------------------------------------------------------------

#[test]
fn async_enactor_recovers_transient_faults_to_the_reference_fixpoint() {
    let g = weighted_graph();
    let expect = reference::sssp(&g, 0u32);
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 4 }, 4, Duplication::All);
    let mut sys = SimSystem::homogeneous(4, HardwareProfile::k40());
    // Early per-device launch indices and the first send on 0→1 are all
    // guaranteed to be reached regardless of async scheduling.
    sys.attach_fault_plan(
        &FaultPlan::new().kernel_fail(0, 2).transient_oom(1, 3).transfer_fail(0, 1, 0),
    );
    let mut runner = AsyncRunner::with_config(sys, &dist, Sssp, &resilient_config()).unwrap();
    let report = runner.enact(Some(0u32)).unwrap();
    let dists: Vec<u32> = (0..g.n_vertices())
        .map(|v| {
            let (gpu, local) = dist.locate(v as u32);
            runner.state(gpu).dists[local as usize]
        })
        .collect();
    assert_eq!(dists, expect, "async fixpoint after recovery must match the reference");
    assert!(report.recovery.kernel_retries >= 2, "both kernel transients relaunched");
    assert!(report.recovery.transfer_retries >= 1, "the faulted send was re-sent");
    assert_eq!(report.recovery.faults_injected, 3);
    assert!(report.recovery.backoff_us > 0.0, "async retries charge simulated backoff");
}

#[test]
fn async_enactor_turns_device_loss_into_a_typed_error_not_a_hang() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 4 }, 3, Duplication::All);
    let mut sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    sys.attach_fault_plan(&FaultPlan::new().device_loss(1, 5));
    let mut runner = AsyncRunner::with_config(sys, &dist, Cc, &resilient_config()).unwrap();
    match runner.enact(None) {
        Err(VgpuError::DeviceLost { device: 1 }) => {}
        other => panic!("expected DeviceLost {{ device: 1 }}, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// butterfly fallback
// ---------------------------------------------------------------------------

#[test]
fn a_link_burst_degrades_one_butterfly_superstep_to_direct_broadcast() {
    let g = graph();
    let expect = reference::cc(&g);
    let config =
        EnactConfig { comm_topology: CommTopology::Butterfly, tracing: true, ..resilient_config() };
    let run = |plan: Option<FaultPlan>| {
        let mut runner = ResilientRunner::homogeneous(&g, Cc, 4, HardwareProfile::k40(), config);
        if let Some(p) = plan {
            runner = runner.with_fault_plan(p);
        }
        runner.enact_with(None, gather_components).unwrap()
    };
    let (clean, clean_comps) = run(None);
    assert_eq!(clean_comps, expect);
    assert_eq!(clean.recovery.butterfly_fallbacks, 0, "no fault, no fallback");

    // Four consecutive faults on one stage link: the in-place budget is
    // 1 + 3 retries, so the stage vote must trip and the superstep degrade.
    let burst = FaultPlan::parse("tfail:0>1@0, tfail:0>1@1, tfail:0>1@2, tfail:0>1@3").unwrap();
    let (faulty, comps) = run(Some(burst));
    assert_eq!(comps, expect, "the degraded superstep must still converge correctly");
    assert!(faulty.recovery.butterfly_fallbacks >= 1, "the fallback must be on the record");
    assert!(faulty.recovery.transfer_retries >= 3, "the stage burned its retry budget first");
    assert!(faulty.recovery.lost_devices.is_empty(), "degradation must not cost a device");
    let jsonl = faulty.trace.as_ref().unwrap().to_jsonl();
    assert!(
        jsonl.contains("butterfly-fallback"),
        "the fallback broadcast must be visible in the trace"
    );
}

// ---------------------------------------------------------------------------
// remap across failover
// ---------------------------------------------------------------------------

#[test]
fn remap_rewrites_every_event_class_onto_the_survivor_id_space() {
    let plan = FaultPlan::new()
        .kernel_fail(2, 5)
        .device_loss(1, 9)
        .transfer_fail(3, 2, 1)
        .transfer_fail(1, 0, 4)
        .spill_fail(2, 0)
        .chunk_pass_fail(1, 2)
        .arena_lease_oom(3, 1);
    // Device 1 is gone; survivors [0, 2, 3] run as runtime ids [0, 1, 2].
    let remapped = plan.remap(&[0, 2, 3]);
    let expected = FaultPlan::new()
        .kernel_fail(1, 5)
        .transfer_fail(2, 1, 1)
        .spill_fail(1, 0)
        .arena_lease_oom(2, 1);
    assert_eq!(
        remapped, expected,
        "transfer endpoints and pressure devices must both be re-homed; \
         every event touching the lost device must be dropped"
    );
    // Identity mapping is a no-op.
    assert_eq!(plan.remap(&[0, 1, 2, 3]), plan);
}

#[test]
fn post_failover_transfer_faults_land_on_the_remapped_links() {
    let g = graph();
    let expect = reference::bfs(&g, 0u32);
    // Lose device 1 mid-run; keep transient transfer faults planned on
    // survivor links (3→2 and 2→3). After the failover those links only
    // exist under remapped runtime ids, so a correct completion with the
    // retries on record pins the endpoint rewrite end-to-end.
    let plan = FaultPlan::new().device_loss(1, 9).transfer_fail(3, 2, 1).transfer_fail(2, 3, 2);
    let (report, labels) =
        ResilientRunner::homogeneous(&g, Bfs::default(), 4, HardwareProfile::k40(), {
            EnactConfig {
                recovery: RecoveryPolicy { checkpoint_interval: 2, ..RecoveryPolicy::resilient() },
                ..Default::default()
            }
        })
        .with_fault_plan(plan)
        .enact_with(Some(0u32), gather_labels)
        .unwrap();
    assert_eq!(labels, expect, "BFS must finish correctly on the survivors");
    assert_eq!(report.recovery.lost_devices, vec![1]);
    assert_eq!(report.recovery.failovers, 1);
    assert_eq!(report.n_devices, 3, "the run finishes on the survivors");
    assert!(
        report.recovery.transfer_retries >= 1,
        "the planned link faults must have fired and been absorbed in place"
    );
    assert!(report.recovery.faults_injected >= 2, "loss plus at least one transfer fault");
}

// ---------------------------------------------------------------------------
// faults mid-service: only the targeted query aborts or recovers
// ---------------------------------------------------------------------------

mod service_faults {
    use super::*;
    use mgpu_bench::service::{build_query_specs, parse_query_list, ExecMode};
    use mgpu_core::{PressurePolicy, Service, ServicePolicy};
    use mgpu_graph_analytics::partition::Partitioner;

    const GPUS: usize = 4;

    fn policy() -> ServicePolicy {
        ServicePolicy {
            seed: 5,
            workers: 1,
            lanes: 0, // one wave: every query co-scheduled with the faulted ones
            mem_cap: None,
            residency_bytes: 0,
            pressure: PressurePolicy::governed(),
        }
    }

    /// Five co-scheduled queries; q1 recovers a device loss through the
    /// resilient engine, q3 dies on a device loss in the plain BSP engine,
    /// q4 absorbs a transient transfer fault via in-place retries — and
    /// q0/q2 never notice any of it.
    #[test]
    fn faults_mid_service_touch_only_the_queries_they_target() {
        let g = weighted_graph();
        let part = RandomPartitioner { seed: 3 };
        let dist = DistGraph::partition(&g, &part, GPUS, Duplication::All);
        let owner = part.assign(&g, GPUS);
        let mut descs = parse_query_list("bfs:0,sssp:1@resilient,cc,bfs:2,sssp:0").unwrap();
        descs[1].plan = Some(FaultPlan::parse("lose:1@2").unwrap());
        descs[3].plan = Some(FaultPlan::parse("lose:0@1").unwrap());
        descs[4].plan = Some(FaultPlan::parse("tfail:0>1@1").unwrap());
        assert_eq!(descs[1].mode, ExecMode::Resilient);

        let config = resilient_config();
        let faulted =
            build_query_specs(&g, &dist, &owner, HardwareProfile::k40(), 0, config, &descs)
                .unwrap();
        let clean_descs = parse_query_list("bfs:0,sssp:1@resilient,cc,bfs:2,sssp:0").unwrap();
        let clean =
            build_query_specs(&g, &dist, &owner, HardwareProfile::k40(), 0, config, &clean_descs)
                .unwrap();

        let frep = Service::new(policy()).run(&faulted);
        let crep = Service::new(policy()).run(&clean);
        assert!(crep.all_ok(), "fault-free mix must succeed");
        assert_eq!(frep.waves, 1, "unbounded lanes co-schedule the whole mix");

        // q1: the resilient engine rode out the device loss, visibly.
        let q1 = frep.outcomes[1].result.as_ref().expect("resilient query recovers");
        assert!(q1.recovery.failovers > 0, "failover must be logged");
        assert_eq!(q1.recovery.lost_devices, vec![1], "the planned device loss is on record");
        assert_eq!(
            frep.outcomes[1].values, crep.outcomes[1].values,
            "recovery must not change the answer"
        );

        // q3: the plain BSP engine turns the same class of fault into a
        // typed error — no hang, no poisoned neighbours.
        let q3 = frep.outcomes[3].result.as_ref().expect_err("BSP query dies on device loss");
        assert!(matches!(q3, VgpuError::DeviceLost { .. }), "want a typed DeviceLost, got {q3:?}");
        assert!(frep.outcomes[3].values.is_empty(), "a dead query harvests nothing");

        // q4: a transient transfer fault is absorbed by in-place retries —
        // same answer, and the retry is on the per-query record.
        let q4 = frep.outcomes[4].result.as_ref().expect("transient is absorbed");
        assert!(q4.recovery.transfer_retries > 0, "the retry must be logged per query");
        assert_eq!(frep.outcomes[4].values, crep.outcomes[4].values);

        // q0/q2 (clean BSP queries in the same wave): bit-equal to their
        // fault-free counterparts, reports and results.
        for q in [0usize, 2] {
            let f = frep.outcomes[q].result.as_ref().expect("unaffected query succeeds");
            let c = crep.outcomes[q].result.as_ref().unwrap();
            assert!(
                f.same_simulation(c),
                "query {q} shares a wave with faulted queries but must not feel them"
            );
            assert_eq!(frep.outcomes[q].values, crep.outcomes[q].values);
        }

        // Admission saw all five queries regardless of their fate.
        assert_eq!(frep.admission.len(), 5);
        assert!(frep.admission.iter().all(|a| !a.rejected));
    }

    /// The faulted service run is itself deterministic: same seed, same
    /// specs, same typed failure and same recovery counters.
    #[test]
    fn a_faulted_service_run_replays_bit_identically() {
        let g = weighted_graph();
        let part = RandomPartitioner { seed: 3 };
        let dist = DistGraph::partition(&g, &part, GPUS, Duplication::All);
        let owner = part.assign(&g, GPUS);
        let mut descs = parse_query_list("bfs:0,sssp:1@resilient,cc").unwrap();
        descs[1].plan = Some(FaultPlan::parse("lose:2@2").unwrap());
        let config = resilient_config();
        let specs = build_query_specs(&g, &dist, &owner, HardwareProfile::k40(), 0, config, &descs)
            .unwrap();
        let a = Service::new(policy()).run(&specs);
        let b = Service::new(policy()).run(&specs);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            match (&x.result, &y.result) {
                (Ok(rx), Ok(ry)) => assert!(rx.same_simulation(ry)),
                (Err(ex), Err(ey)) => assert_eq!(format!("{ex:?}"), format!("{ey:?}")),
                _ => panic!("query '{}' changed fate between replays", x.name),
            }
            assert_eq!(x.values, y.values);
        }
        assert_eq!(a.waves, b.waves);
        assert_eq!(format!("{:?}", a.admission), format!("{:?}", b.admission));
    }
}
