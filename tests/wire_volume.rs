//! Wire-volume reduction acceptance suite.
//!
//! The comm-reduction stack — monotone send suppression, real package
//! encodings, and the butterfly broadcast collective — must be *invisible*
//! in results: every enabled configuration produces bit-identical labels,
//! distances and components, and the default configuration produces
//! bit-identical reports to the pre-reduction code. On top of that this
//! suite pins the headline wins: DOBFS broadcast bytes drop ≥2× at six
//! GPUs on an rmat analog, and delta-stepping SSSP sends measurably fewer
//! vertices with suppression on.

use mgpu_graph_analytics::core::{CommTopology, EnactConfig, EnactReport, Runner, WireEncoding};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{gnm, Dataset};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{
    cc, dobfs, reference, sssp, sssp_delta, Cc, Dobfs, Sssp, SsspDelta,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

/// All wire-reduction configurations worth checking, defaults first.
fn configs() -> Vec<(&'static str, EnactConfig)> {
    let base = EnactConfig::default();
    vec![
        ("default", base),
        ("suppression", EnactConfig { suppression: true, ..base }),
        ("auto-encoding", EnactConfig { wire_encoding: WireEncoding::Auto, ..base }),
        ("butterfly", EnactConfig { comm_topology: CommTopology::Butterfly, ..base }),
        (
            "all-enabled",
            EnactConfig {
                suppression: true,
                wire_encoding: WireEncoding::Auto,
                comm_topology: CommTopology::Butterfly,
                ..base
            },
        ),
    ]
}

fn with_threads(cfg: &EnactConfig, threads: usize) -> EnactConfig {
    EnactConfig { kernel_threads: Some(threads), ..*cfg }
}

fn dist_for(g: &Csr<u32, u64>, n: usize, csc: bool) -> DistGraph<u32, u64> {
    let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n) as u32).collect();
    let mut dist = DistGraph::build(g, owner, n, Duplication::All);
    if csc {
        dist.build_cscs();
    }
    dist
}

fn sys(n: usize) -> SimSystem {
    SimSystem::homogeneous(n, HardwareProfile::k40())
}

// ---------------------------------------------------------------------------
// Bit-identity across the configuration matrix
// ---------------------------------------------------------------------------

#[test]
fn dobfs_is_bit_identical_in_every_configuration() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(400, 2400, 11));
    let expect = reference::bfs(&g, 0u32);
    for n in [2usize, 4, 6] {
        let dist = dist_for(&g, n, true);
        for (name, cfg) in configs() {
            let mut per_thread: Vec<EnactReport> = Vec::new();
            for threads in [1usize, 4] {
                let mut runner =
                    Runner::new(sys(n), &dist, Dobfs::default(), with_threads(&cfg, threads))
                        .unwrap();
                let report = runner.enact(Some(0)).unwrap();
                assert_eq!(
                    dobfs::gather_labels(&runner, &dist),
                    expect,
                    "{name}, {n} GPUs, {threads} threads"
                );
                per_thread.push(report);
            }
            assert!(
                per_thread[0].same_simulation(&per_thread[1]),
                "{name} at {n} GPUs must be bit-identical across kernel thread counts"
            );
        }
    }
}

#[test]
fn cc_is_bit_identical_in_every_configuration() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(300, 420, 23));
    let expect = reference::cc(&g);
    for n in [2usize, 4, 8] {
        let dist = dist_for(&g, n, false);
        for (name, cfg) in configs() {
            let mut per_thread: Vec<EnactReport> = Vec::new();
            for threads in [1usize, 4] {
                let mut runner =
                    Runner::new(sys(n), &dist, Cc, with_threads(&cfg, threads)).unwrap();
                let report = runner.enact(None).unwrap();
                assert_eq!(
                    cc::gather_components(&runner, &dist),
                    expect,
                    "{name}, {n} GPUs, {threads} threads"
                );
                per_thread.push(report);
            }
            assert!(
                per_thread[0].same_simulation(&per_thread[1]),
                "{name} at {n} GPUs must be bit-identical across kernel thread counts"
            );
        }
    }
}

#[test]
fn sssp_variants_are_bit_identical_in_every_configuration() {
    let mut coo = gnm(250, 1200, 31);
    add_paper_weights(&mut coo, 32);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let expect = reference::sssp(&g, 0u32);
    for n in [2usize, 4, 6] {
        let dist = dist_for(&g, n, false);
        for (name, cfg) in configs() {
            for threads in [1usize, 4] {
                let mut runner =
                    Runner::new(sys(n), &dist, Sssp, with_threads(&cfg, threads)).unwrap();
                runner.enact(Some(0)).unwrap();
                assert_eq!(
                    sssp::gather_dists(&runner, &dist),
                    expect,
                    "Sssp {name}, {n} GPUs, {threads} threads"
                );

                let mut runner =
                    Runner::new(sys(n), &dist, SsspDelta::default(), with_threads(&cfg, threads))
                        .unwrap();
                runner.enact(Some(0)).unwrap();
                assert_eq!(
                    sssp_delta::gather_dists(&runner, &dist),
                    expect,
                    "SsspDelta {name}, {n} GPUs, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn butterfly_handles_non_power_of_two_gpu_counts() {
    // n=7: the final dissemination stage overshoots (sends a prefix covering
    // more blocks than strictly missing); redundant blocks must be absorbed
    // by the monotone combine without changing any result.
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(350, 2000, 47));
    let dist = dist_for(&g, 7, true);
    let cfg = EnactConfig {
        comm_topology: CommTopology::Butterfly,
        wire_encoding: WireEncoding::Auto,
        suppression: true,
        ..EnactConfig::default()
    };
    let mut runner = Runner::new(sys(7), &dist, Dobfs::default(), cfg).unwrap();
    let report = runner.enact(Some(0)).unwrap();
    assert_eq!(dobfs::gather_labels(&runner, &dist), reference::bfs(&g, 0u32));
    assert!(report.comm.collective_stages > 0, "butterfly path must have been taken");

    let dist = dist_for(&g, 7, false);
    let cfg = EnactConfig {
        comm_topology: CommTopology::Butterfly,
        wire_encoding: WireEncoding::Auto,
        ..EnactConfig::default()
    };
    let mut runner = Runner::new(sys(7), &dist, Cc, cfg).unwrap();
    runner.enact(None).unwrap();
    assert_eq!(cc::gather_components(&runner, &dist), reference::cc(&g));
}

// ---------------------------------------------------------------------------
// Defaults stay inert
// ---------------------------------------------------------------------------

#[test]
fn default_config_reports_no_reduction_activity() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(200, 900, 5));
    let dist = dist_for(&g, 4, true);
    let mut runner = Runner::new(sys(4), &dist, Dobfs::default(), EnactConfig::default()).unwrap();
    let report = runner.enact(Some(0)).unwrap();
    // The encoding histogram always runs (Legacy's accounting cap registers
    // as list/bitmap); suppression and collective counters must stay zero
    // under the default configuration.
    assert_eq!(report.comm.suppressed_vertices, 0);
    assert_eq!(report.comm.suppressed_bytes, 0);
    assert_eq!(report.comm.enc_delta, 0);
    assert_eq!(report.comm.collective_stages, 0);
    assert!(report.history.iter().all(|s| s.suppressed == 0));
}

#[test]
fn default_selective_accounting_is_unchanged() {
    // The historical invariant pinned by bsp_counters_are_conserved: under
    // Legacy encoding a selective-push vertex costs id + label = 8 bytes.
    let mut coo = gnm(150, 700, 71);
    add_paper_weights(&mut coo, 72);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let dist = dist_for(&g, 3, false);
    let mut runner = Runner::new(sys(3), &dist, Sssp, EnactConfig::default()).unwrap();
    let report = runner.enact(Some(0)).unwrap();
    assert_eq!(report.totals.h_bytes_sent, report.totals.h_vertices * 8);
    assert_eq!(report.comm.suppressed_vertices, 0);
    assert_eq!(report.comm.collective_stages, 0);
}

// ---------------------------------------------------------------------------
// The headline reductions
// ---------------------------------------------------------------------------

/// The rmat_2Mv_128Me analog the CLI acceptance run uses (shift 8, seed 42).
fn rmat_analog() -> Csr<u32, u64> {
    let ds = Dataset::by_name("rmat_2Mv_128Me").expect("catalog entry");
    GraphBuilder::undirected(&ds.generate(8, 42))
}

#[test]
fn dobfs_broadcast_bytes_drop_at_least_2x_at_six_gpus() {
    let g = rmat_analog();
    let src = (0..g.n_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 42 }, 6, Duplication::All);
    let mut dist = dist;
    dist.build_cscs();

    let run = |cfg: EnactConfig| -> (Vec<u32>, EnactReport) {
        let mut runner = Runner::new(sys(6), &dist, Dobfs::default(), cfg).unwrap();
        let report = runner.enact(Some(src)).unwrap();
        (dobfs::gather_labels(&runner, &dist), report)
    };

    let (labels_base, base) = run(EnactConfig::default());
    let (labels_opt, opt) = run(EnactConfig {
        suppression: true,
        wire_encoding: WireEncoding::Auto,
        comm_topology: CommTopology::Butterfly,
        ..EnactConfig::default()
    });

    assert_eq!(labels_base, labels_opt, "reductions must not change BFS labels");
    assert_eq!(labels_base, reference::bfs(&g, src));
    let ratio = base.totals.h_bytes_sent as f64 / opt.totals.h_bytes_sent as f64;
    assert!(
        ratio >= 2.0,
        "expected ≥2× broadcast byte reduction at 6 GPUs, got {ratio:.3}× \
         ({} → {} bytes)",
        base.totals.h_bytes_sent,
        opt.totals.h_bytes_sent
    );
    assert!(opt.comm.collective_stages > 0);
    assert!(opt.comm.enc_bitmap + opt.comm.enc_delta > 0, "Auto must pick compressed encodings");
}

#[test]
fn sssp_delta_suppression_cuts_sent_vertices() {
    // Delta-stepping re-expands boundary buckets, emitting the same vertex
    // with the same final distance across supersteps — exactly what the
    // sender-side floor cache catches.
    let mut coo = gnm(2000, 16000, 91);
    add_paper_weights(&mut coo, 92);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let dist = dist_for(&g, 4, false);

    let run = |cfg: EnactConfig| -> (Vec<u32>, EnactReport) {
        let mut runner = Runner::new(sys(4), &dist, SsspDelta::default(), cfg).unwrap();
        let report = runner.enact(Some(0)).unwrap();
        (sssp_delta::gather_dists(&runner, &dist), report)
    };

    let (dists_base, base) = run(EnactConfig::default());
    let (dists_supp, supp) = run(EnactConfig { suppression: true, ..EnactConfig::default() });

    assert_eq!(dists_base, dists_supp, "suppression must not change distances");
    assert_eq!(dists_base, reference::sssp(&g, 0u32));
    assert!(
        supp.comm.suppressed_vertices > 0,
        "delta-stepping re-expansions should trip the suppression cache"
    );
    assert!(
        supp.totals.h_vertices < base.totals.h_vertices,
        "suppression should cut sent vertices: {} vs {}",
        supp.totals.h_vertices,
        base.totals.h_vertices
    );
}
