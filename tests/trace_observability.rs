//! Golden-trace regression suite for superstep-level observability.
//!
//! The structured trace is part of the determinism contract: because every
//! span carries *simulated* clocks recorded at the exact charge sites that
//! bump the BSP counters, a trace is a pure function of the workload —
//! bit-identical across kernel-thread counts and repeated runs, and its
//! serialized JSONL form byte-identical. These tests pin that contract, the
//! exact trace↔report reconciliation invariant (`W + H·g + S·l` folds
//! reproduce the counters and the makespan bitwise) across every primitive
//! × communication strategy × GPU count × collective topology, and the
//! zero-cost-when-off guarantee (`same_simulation` holds between traced and
//! untraced runs).

use mgpu_graph_analytics::core::{
    AsyncRunner, CommStrategy, CommTopology, EnactConfig, EnactReport, Profile, Runner,
};
use mgpu_graph_analytics::gen::gnm;
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication};
use mgpu_graph_analytics::primitives::{Bfs, Cc, Sssp};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

const GPU_COUNTS: [usize; 3] = [2, 4, 8];
const COMMS: [Option<CommStrategy>; 2] = [None, Some(CommStrategy::Broadcast)];
const TOPOLOGIES: [CommTopology; 2] = [CommTopology::Direct, CommTopology::Butterfly];

fn graph(seed: u64) -> Csr<u32, u64> {
    let mut coo = gnm(220, 1300, seed);
    add_paper_weights(&mut coo, seed ^ 0x77);
    GraphBuilder::undirected(&coo)
}

fn dist_for(g: &Csr<u32, u64>, n_gpus: usize) -> DistGraph<u32, u64> {
    let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
    DistGraph::build(g, owner, n_gpus, Duplication::All)
}

fn config(
    comm: Option<CommStrategy>,
    topology: CommTopology,
    threads: usize,
    tracing: bool,
) -> EnactConfig {
    EnactConfig {
        comm,
        comm_topology: topology,
        kernel_threads: Some(threads),
        tracing,
        ..Default::default()
    }
}

/// Run one primitive (selected by name to keep the problem types simple)
/// and return the report.
fn run(prim: &str, g: &Csr<u32, u64>, n_gpus: usize, cfg: EnactConfig) -> EnactReport {
    let dist = dist_for(g, n_gpus);
    let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
    match prim {
        "bfs" => {
            let mut r = Runner::new(system, &dist, Bfs::default(), cfg).unwrap();
            r.enact(Some(0u32)).unwrap()
        }
        "sssp" => {
            let mut r = Runner::new(system, &dist, Sssp, cfg).unwrap();
            r.enact(Some(0u32)).unwrap()
        }
        "cc" => {
            let mut r = Runner::new(system, &dist, Cc, cfg).unwrap();
            r.enact(None).unwrap()
        }
        other => panic!("unknown primitive {other}"),
    }
}

// --- golden traces ------------------------------------------------------

#[test]
fn traces_are_byte_identical_across_kernel_thread_counts_and_runs() {
    let g = graph(17);
    for prim in ["bfs", "sssp", "cc"] {
        for topology in TOPOLOGIES {
            let golden = run(prim, &g, 4, config(None, topology, 1, true));
            let golden = golden.trace.as_ref().unwrap().to_jsonl();
            assert!(!golden.is_empty(), "{prim}: empty golden trace");
            for threads in [1usize, 4] {
                let again = run(prim, &g, 4, config(None, topology, threads, true));
                let again = again.trace.as_ref().unwrap().to_jsonl();
                assert_eq!(
                    golden, again,
                    "{prim} {topology:?}: trace not byte-identical at {threads} threads"
                );
            }
        }
    }
}

// --- exact reconciliation ----------------------------------------------

#[test]
fn profiles_reconcile_exactly_for_every_configuration() {
    let g = graph(29);
    for prim in ["bfs", "sssp", "cc"] {
        for comm in COMMS {
            for n in GPU_COUNTS {
                for topology in TOPOLOGIES {
                    let report = run(prim, &g, n, config(comm, topology, 4, true));
                    let trace = report.trace.as_ref().unwrap();
                    let profile = Profile::from_trace(trace);
                    profile.reconcile(&report).unwrap_or_else(|e| {
                        panic!("{prim} comm {comm:?} {n} GPUs {topology:?}: {e}")
                    });
                    assert_eq!(
                        profile.n_supersteps(),
                        report.iterations,
                        "{prim} {n} GPUs {topology:?}: per-superstep table not dense"
                    );
                }
            }
        }
    }
}

#[test]
fn reconciliation_attributes_the_whole_makespan() {
    // The profiled makespan *is* sim_time_us, reconstructed from the final
    // sync span — bitwise, not approximately.
    let g = graph(31);
    let report = run("sssp", &g, 4, config(None, CommTopology::Direct, 1, true));
    let profile = Profile::from_trace(report.trace.as_ref().unwrap());
    assert_eq!(profile.makespan_us.to_bits(), report.sim_time_us.to_bits());
    assert!(profile.total.w_us > 0.0);
    assert!(profile.total.sync_us > 0.0);
    assert_eq!(profile.total.kernels, report.totals.kernel_launches);
}

// --- zero-cost when off -------------------------------------------------

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let g = graph(43);
    for prim in ["bfs", "sssp", "cc"] {
        for topology in TOPOLOGIES {
            let off = run(prim, &g, 4, config(None, topology, 4, false));
            let on = run(prim, &g, 4, config(None, topology, 4, true));
            assert!(off.trace.is_none(), "{prim}: untraced run carries a trace");
            assert!(on.trace.is_some(), "{prim}: traced run lost its trace");
            assert!(
                off.same_simulation(&on),
                "{prim} {topology:?}: tracing perturbed the simulation"
            );
        }
    }
}

// --- dense superstep history (elision regression) -----------------------

#[test]
fn superstep_history_is_dense_under_every_topology() {
    // The butterfly path used to elide intermediate-frontier recording for
    // some supersteps, leaving `history` shorter than `iterations`; the
    // indices are now dense — one entry per superstep, always.
    let g = graph(53);
    for prim in ["bfs", "sssp", "cc"] {
        for comm in COMMS {
            for topology in TOPOLOGIES {
                let report = run(prim, &g, 4, config(comm, topology, 4, false));
                assert_eq!(
                    report.history.len(),
                    report.iterations,
                    "{prim} comm {comm:?} {topology:?}: history not dense"
                );
                assert!(
                    report.history.iter().any(|h| h.input > 0),
                    "{prim}: dense history lost its content"
                );
            }
        }
    }
}

// --- exporters on real runs ---------------------------------------------

#[test]
fn exporters_emit_well_formed_output_for_a_real_run() {
    let g = graph(61);
    let report = run("bfs", &g, 4, config(None, CommTopology::Direct, 1, true));
    let trace = report.trace.as_ref().unwrap();
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), trace.n_events());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL line: {line}");
    }
    let chrome = trace.to_chrome_json();
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    for dev in 0..4 {
        assert!(chrome.contains(&format!("\"name\":\"GPU {dev}\"")), "missing GPU {dev}");
    }
}

// --- async mode ---------------------------------------------------------

#[test]
fn async_traces_reconcile_per_device_sums() {
    // The async schedule is nondeterministic, so traces are not golden —
    // but every recorded span still reconciles with the counters of its
    // own run (the makespan check is skipped: no sync spans exist).
    let g = graph(71);
    let dist = DistGraph::build(
        &g,
        (0..g.n_vertices()).map(|v| (v % 3) as u32).collect(),
        3,
        Duplication::All,
    );
    let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    let cfg = EnactConfig { tracing: true, ..Default::default() };
    let mut runner = AsyncRunner::with_config(sys, &dist, Sssp, &cfg).unwrap();
    let report = runner.enact(Some(0u32)).unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert!(trace.n_events() > 0);
    let profile = Profile::from_trace(trace);
    profile.reconcile(&report).unwrap();
    assert_eq!(profile.total.syncs, 0, "async mode has no superstep syncs");
}
