//! Metering invariance of the parallel operator kernels.
//!
//! The per-superstep hot path (advance / filter / fused kernels, the
//! selective split and the broadcast packaging) executes on
//! `kernel_threads` host threads, but every metered quantity — kernel item
//! counts, wire bytes, combine items, and therefore `sim_time_us` and every
//! BSP counter — is a pure function of the workload, never of the thread
//! schedule. These tests pin that contract end-to-end: BFS, SSSP and
//! PageRank produce bit-identical results, simulated clocks and counters at
//! 1 and 4 kernel threads, across GPU counts and both communication
//! strategies.
//!
//! PageRank additionally exercises the f32 accumulation operator, whose
//! chunk-ordered partial merge keeps non-associative float addition
//! schedule-independent — ranks are compared as raw bits, not approximately.

use mgpu_graph_analytics::core::{CommStrategy, EnactConfig, EnactReport, Runner};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::gnm;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, pr::gather_ranks, sssp::gather_dists, Bfs, Pagerank, Sssp,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

const GPU_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMS: [Option<CommStrategy>; 2] = [None, Some(CommStrategy::Broadcast)];

fn config(comm: Option<CommStrategy>, threads: usize) -> EnactConfig {
    EnactConfig { comm, kernel_threads: Some(threads), ..Default::default() }
}

fn dist_for(g: &Csr<u32, u64>, n_gpus: usize) -> DistGraph<u32, u64> {
    let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
    DistGraph::build(g, owner, n_gpus, Duplication::All)
}

/// Assert two runs are indistinguishable to the simulation: same answer
/// (bitwise), same simulated clock (bitwise), same BSP counters on every
/// device.
fn assert_identical(a: &(Vec<u32>, EnactReport), b: &(Vec<u32>, EnactReport), ctx: &str) {
    assert_eq!(a.0, b.0, "{ctx}: results differ across thread counts");
    assert_eq!(a.1.iterations, b.1.iterations, "{ctx}: superstep counts differ");
    assert_eq!(
        a.1.sim_time_us.to_bits(),
        b.1.sim_time_us.to_bits(),
        "{ctx}: sim_time_us differs ({} vs {})",
        a.1.sim_time_us,
        b.1.sim_time_us
    );
    assert_eq!(a.1.totals, b.1.totals, "{ctx}: aggregate BSP counters differ");
    assert_eq!(a.1.per_device, b.1.per_device, "{ctx}: per-device counters differ");
}

fn run_bfs(
    g: &Csr<u32, u64>,
    n_gpus: usize,
    comm: Option<CommStrategy>,
    threads: usize,
) -> (Vec<u32>, EnactReport) {
    let dist = dist_for(g, n_gpus);
    let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
    let mut runner = Runner::new(system, &dist, Bfs::default(), config(comm, threads)).unwrap();
    let report = runner.enact(Some(0u32)).unwrap();
    (gather_labels(&runner, &dist), report)
}

fn run_sssp(
    g: &Csr<u32, u64>,
    n_gpus: usize,
    comm: Option<CommStrategy>,
    threads: usize,
) -> (Vec<u32>, EnactReport) {
    let dist = dist_for(g, n_gpus);
    let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
    let mut runner = Runner::new(system, &dist, Sssp, config(comm, threads)).unwrap();
    let report = runner.enact(Some(0u32)).unwrap();
    (gather_dists(&runner, &dist), report)
}

fn run_pr(
    g: &Csr<u32, u64>,
    n_gpus: usize,
    comm: Option<CommStrategy>,
    threads: usize,
) -> (Vec<u32>, EnactReport) {
    // threshold 0.0 → always runs to the iteration cap, so the (barrier-
    // arrival-ordered) f64 residual reduction never gates control flow.
    let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 12 };
    let dist = dist_for(g, n_gpus);
    let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
    let mut runner = Runner::new(system, &dist, pr, config(comm, threads)).unwrap();
    let report = runner.enact(None).unwrap();
    let bits = gather_ranks(&runner, &dist).into_iter().map(f32::to_bits).collect();
    (bits, report)
}

#[test]
fn bfs_is_bit_identical_across_kernel_thread_counts() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(200, 1200, 17));
    for n in GPU_COUNTS {
        for comm in COMMS {
            let seq = run_bfs(&g, n, comm, 1);
            let par = run_bfs(&g, n, comm, 4);
            assert_identical(&seq, &par, &format!("BFS {n} GPUs comm {comm:?}"));
        }
    }
}

#[test]
fn sssp_is_bit_identical_across_kernel_thread_counts() {
    let mut coo = gnm(200, 1100, 23);
    add_paper_weights(&mut coo, 7);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    for n in GPU_COUNTS {
        for comm in COMMS {
            let seq = run_sssp(&g, n, comm, 1);
            let par = run_sssp(&g, n, comm, 4);
            assert_identical(&seq, &par, &format!("SSSP {n} GPUs comm {comm:?}"));
        }
    }
}

#[test]
fn pagerank_f32_ranks_are_bit_identical_across_kernel_thread_counts() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(180, 1000, 31));
    for n in GPU_COUNTS {
        for comm in COMMS {
            let seq = run_pr(&g, n, comm, 1);
            let par = run_pr(&g, n, comm, 4);
            assert_identical(&seq, &par, &format!("PR {n} GPUs comm {comm:?}"));
        }
    }
}

#[test]
fn thread_count_zero_and_eight_also_agree() {
    // 0 clamps to 1 inside the device; 8 exceeds the chunk count on small
    // inputs, exercising the sequential fallback inside parallel kernels.
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(120, 700, 41));
    let base = run_bfs(&g, 4, None, 1);
    for t in [0, 2, 8] {
        let other = run_bfs(&g, 4, None, t);
        assert_identical(&base, &other, &format!("BFS 4 GPUs threads {t}"));
    }
}
