//! End-to-end tests of graceful degradation under memory pressure: the
//! governor contract of ISSUE 3.
//!
//! * Capacity sweep — BFS / SSSP / CC across communication strategies, with
//!   per-device capacity shrunk step by step: at every feasible capacity the
//!   results are bit-equal to the unconstrained run (slower, never wrong);
//!   below the hard-infeasible floor the run fails with a *typed*
//!   `OutOfMemory`, never a panic or a wrong answer.
//! * Determinism — a memory-starved, governed run is bit-identical across
//!   `kernel_threads` (every governor decision is a function of simulated
//!   pool accounting only).
//! * Accounting — the report itemizes every governor decision (admission
//!   downgrades, chunked passes, spill bytes, reclaim retries), and the
//!   default (ungoverned) policy changes nothing at all.

use mgpu_graph_analytics::core::problem::MgpuProblem;
use mgpu_graph_analytics::core::{
    AllocScheme, CommStrategy, EnactConfig, EnactReport, PressurePolicy, Runner,
};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{gnm, preferential_attachment};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, sssp::gather_dists, Bfs, Cc, Sssp,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, Result, SimSystem, VgpuError};

fn graph() -> Csr<u32, u64> {
    GraphBuilder::undirected(&preferential_attachment(400, 6, 11))
}

fn weighted_graph() -> Csr<u32, u64> {
    let mut coo = gnm(300, 1500, 23);
    add_paper_weights(&mut coo, 5);
    GraphBuilder::undirected(&coo)
}

/// One run: 4 devices, optionally capped at `cap` bytes each (which also
/// arms the governor), requesting the memory-hungriest scheme (`Max`) so the
/// admission chain has something to walk.
fn run_one<P, R>(
    g: &Csr<u32, u64>,
    problem: P,
    cap: Option<u64>,
    threads: usize,
    comm: Option<CommStrategy>,
    src: Option<u32>,
    gather: impl Fn(&Runner<u32, u64, P>, &DistGraph<u32, u64>) -> R,
) -> Result<(EnactReport, R)>
where
    P: MgpuProblem<u32, u64>,
{
    let dist = DistGraph::partition(g, &RandomPartitioner { seed: 3 }, 4, problem.duplication());
    let profile = match cap {
        Some(c) => HardwareProfile::k40().with_capacity(c),
        None => HardwareProfile::k40(),
    };
    let config = EnactConfig {
        alloc_scheme: Some(AllocScheme::Max),
        comm,
        kernel_threads: Some(threads),
        pressure: if cap.is_some() {
            PressurePolicy::governed()
        } else {
            PressurePolicy::default()
        },
        ..Default::default()
    };
    let mut runner = Runner::new(SimSystem::homogeneous(4, profile), &dist, problem, config)?;
    let report = runner.enact(src)?;
    Ok((report, gather(&runner, &dist)))
}

/// Shrink per-device capacity from the unconstrained peak toward zero: every
/// feasible capacity must reproduce the unconstrained result exactly; every
/// infeasible one must fail with a typed `OutOfMemory`.
fn capacity_sweep<P, R>(
    g: &Csr<u32, u64>,
    mk: impl Fn() -> P,
    comm: Option<CommStrategy>,
    src: Option<u32>,
    gather: impl Fn(&Runner<u32, u64, P>, &DistGraph<u32, u64>) -> R + Copy,
    label: &str,
) where
    P: MgpuProblem<u32, u64>,
    R: PartialEq + std::fmt::Debug,
{
    let (base, expect) = run_one(g, mk(), None, 1, comm, src, gather).unwrap();
    let full = base.peak_memory_per_device;
    assert!(base.governor.is_quiet(), "{label}: ungoverned baseline must be quiet");

    let (mut feasible, mut governed, mut infeasible) = (0u32, 0u32, 0u32);
    let mut cap = full;
    while cap > full / 64 {
        match run_one(g, mk(), Some(cap), 1, comm, src, gather) {
            Ok((r, got)) => {
                assert_eq!(got, expect, "{label} capped at {cap}: degraded run must be exact");
                feasible += 1;
                if !r.governor.is_quiet() {
                    governed += 1;
                }
            }
            Err(VgpuError::OutOfMemory { .. }) => infeasible += 1,
            Err(e) => panic!("{label} capped at {cap}: expected a typed OutOfMemory, got {e}"),
        }
        cap = cap * 3 / 4;
    }
    assert!(feasible >= 2, "{label}: the sweep should find feasible capped capacities");
    assert!(governed >= 1, "{label}: some capacity should force the governor to act");
    assert!(infeasible >= 1, "{label}: tiny capacities must be hard-infeasible");
}

#[test]
fn bfs_capacity_sweep_selective_and_broadcast() {
    let g = graph();
    let expect = reference::bfs(&g, 0u32);
    let (_, labels) = run_one(&g, Bfs::default(), None, 1, None, Some(0), gather_labels).unwrap();
    assert_eq!(labels, expect, "unconstrained baseline must match the reference");
    capacity_sweep(&g, Bfs::default, None, Some(0), gather_labels, "bfs/selective");
    capacity_sweep(
        &g,
        Bfs::default,
        Some(CommStrategy::Broadcast),
        Some(0),
        gather_labels,
        "bfs/broadcast",
    );
}

#[test]
fn sssp_capacity_sweep() {
    let g = weighted_graph();
    let expect = reference::sssp(&g, 0u32);
    let (_, dists) = run_one(&g, Sssp, None, 1, None, Some(0), gather_dists).unwrap();
    assert_eq!(dists, expect, "unconstrained baseline must match the reference");
    capacity_sweep(&g, || Sssp, None, Some(0), gather_dists, "sssp/selective");
}

#[test]
fn cc_capacity_sweep() {
    let g = graph();
    let expect = reference::cc(&g);
    let (_, comps) = run_one(&g, Cc, None, 1, None, None, gather_components).unwrap();
    assert_eq!(comps, expect, "unconstrained baseline must match the reference");
    capacity_sweep(&g, || Cc, None, None, gather_components, "cc/broadcast");
}

#[test]
fn tight_cap_simulation_is_bit_identical_across_kernel_threads() {
    let g = graph();
    let (base, expect) =
        run_one(&g, Bfs::default(), None, 1, None, Some(0), gather_labels).unwrap();
    // Walk down until a capacity actually exercises the governor.
    let mut cap = base.peak_memory_per_device;
    let mut chosen = None;
    while chosen.is_none() {
        match run_one(&g, Bfs::default(), Some(cap), 1, None, Some(0), gather_labels) {
            Ok((r, l)) if !r.governor.is_quiet() => chosen = Some((cap, r, l)),
            Ok(_) => cap = cap * 3 / 4,
            Err(e) => panic!("hit the infeasible floor before the governor acted: {e}"),
        }
    }
    let (cap, r1, l1) = chosen.unwrap();
    assert_eq!(l1, expect, "starved run must still be exact");
    for threads in [2usize, 4] {
        let (rn, ln) =
            run_one(&g, Bfs::default(), Some(cap), threads, None, Some(0), gather_labels).unwrap();
        assert_eq!(ln, l1, "labels at {threads} kernel threads");
        assert!(
            r1.same_simulation(&rn),
            "a governed, memory-starved simulation must be bit-identical across kernel_threads"
        );
    }
}

#[test]
fn report_itemizes_governor_decisions() {
    let g = graph();
    let (base, _) = run_one(&g, Bfs::default(), None, 1, None, Some(0), gather_labels).unwrap();
    // Half the Max-scheme peak: low enough that the admission chain and/or
    // the mid-run tiers must act, high enough to stay feasible.
    let mut cap = base.peak_memory_per_device / 2;
    let (report, _) = loop {
        match run_one(&g, Bfs::default(), Some(cap), 1, None, Some(0), gather_labels) {
            Ok(out) if !out.0.governor.is_quiet() => break out,
            Ok(_) => cap = cap * 3 / 4,
            Err(e) => panic!("expected a feasible governed capacity, got {e}"),
        }
    };
    let gov = &report.governor;
    for d in &gov.downgrades {
        assert_eq!(d.kind, "alloc-scheme", "only the enactor records per-device downgrades here");
        assert!(d.device.is_some());
        assert!(d.estimated_bytes > d.budget_bytes, "a downgrade implies the estimate overflowed");
    }
    if gov.chunked_advances > 0 {
        assert!(
            gov.chunk_passes >= 2 * gov.chunked_advances,
            "a chunked advance is by definition multi-pass"
        );
    }
    assert_eq!(gov.spill_events > 0, gov.spilled_bytes > 0, "spill counters move together");
    // per-device memory stats are populated and bounded by the cap
    assert_eq!(report.mem_per_device.len(), 4);
    for m in &report.mem_per_device {
        assert!(m.peak > 0 && m.peak <= cap);
        assert!(m.live <= m.peak);
    }
    // the JSON report carries the governor fields
    let json = report.to_json();
    for key in ["downgrades", "chunked_advances", "spilled_bytes", "reclaim_retries"] {
        assert!(json.contains(&format!("\"{key}\":")), "to_json must carry {key}");
    }
}

#[test]
fn disabled_policy_under_a_loose_cap_changes_nothing() {
    let g = graph();
    let run = |pressure: PressurePolicy| {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 4, Duplication::All);
        let config = EnactConfig { pressure, ..Default::default() };
        let sys = SimSystem::homogeneous(4, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        (report, gather_labels(&runner, &dist))
    };
    let (off, l_off) = run(PressurePolicy::default());
    let (on, l_on) = run(PressurePolicy::governed());
    assert_eq!(l_off, l_on);
    assert!(on.governor.is_quiet(), "an unconstrained governed run never has to act");
    assert!(
        off.same_simulation(&on),
        "an armed but idle governor must be invisible to the simulation"
    );
}

#[test]
fn traced_pressure_run_charges_spills_and_chunks_in_the_trace() {
    use mgpu_graph_analytics::core::Profile;
    let g = graph();
    let traced_run = |cap: Option<u64>, threads: usize, tracing: bool| {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 4, Duplication::All);
        let profile = match cap {
            Some(c) => HardwareProfile::k40().with_capacity(c),
            None => HardwareProfile::k40(),
        };
        let config = EnactConfig {
            alloc_scheme: Some(AllocScheme::Max),
            kernel_threads: Some(threads),
            tracing,
            pressure: if cap.is_some() {
                PressurePolicy::governed()
            } else {
                PressurePolicy::default()
            },
            ..Default::default()
        };
        let mut runner =
            Runner::new(SimSystem::homogeneous(4, profile), &dist, Bfs::default(), config).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        let labels = gather_labels(&runner, &dist);
        (report, labels)
    };
    let (base, expect) = traced_run(None, 1, true);
    assert!(base.trace.is_some());
    // Walk the cap down to a capacity where the governor acts mid-run.
    let mut cap = base.peak_memory_per_device / 2;
    let (report, labels) = loop {
        let out = traced_run(Some(cap), 1, true);
        if !out.0.governor.is_quiet() {
            break out;
        }
        cap = cap * 3 / 4;
    };
    assert_eq!(labels, expect, "starved traced run must still be exact");

    let trace = report.trace.as_ref().unwrap();
    let p = Profile::from_trace(trace);
    p.reconcile(&report).unwrap();
    // Every governor decision in the log is paired with a typed event.
    let gov = &report.governor;
    assert_eq!(p.total.spills, gov.spill_events, "spill charges in trace");
    assert_eq!(p.total.spilled_bytes, gov.spilled_bytes, "spilled bytes in trace");
    assert_eq!(p.total.chunks, gov.chunked_advances, "chunked advances in trace");
    assert_eq!(p.total.downgrades, gov.downgrades.len() as u64, "admission downgrades in trace");
    assert!(
        p.total.spills + p.total.chunks + p.total.downgrades > 0,
        "the governor acted, so the trace must show it"
    );

    // Deterministic across kernel threads, and free when off.
    let (r4, l4) = traced_run(Some(cap), 4, true);
    assert_eq!(l4, labels);
    assert!(report.same_simulation(&r4));
    assert_eq!(trace.to_jsonl(), r4.trace.as_ref().unwrap().to_jsonl());
    let (off, l_off) = traced_run(Some(cap), 1, false);
    assert_eq!(l_off, labels);
    assert!(off.trace.is_none());
    assert!(off.same_simulation(&report), "tracing must not perturb a governed run");
}

// ---------------------------------------------------------------------------
// concurrent admission: the service ledger queues, and rejects only at the
// hard floor
// ---------------------------------------------------------------------------

mod service_admission {
    use super::*;
    use mgpu_bench::service::{build_query_specs, parse_query_list, residency_bytes};
    use mgpu_core::{Service, ServicePolicy};
    use mgpu_graph_analytics::partition::Partitioner;

    const MIX: &str = "bfs:0,sssp:1,cc,bc:2";

    struct Fixture {
        rb: u64,
        fps: Vec<u64>,
    }

    fn with_service<R>(
        mem_cap: Option<u64>,
        f: impl FnOnce(&Fixture, mgpu_core::ServiceReport) -> R,
    ) -> R {
        let g = weighted_graph();
        let part = RandomPartitioner { seed: 3 };
        let dist = DistGraph::partition(&g, &part, 2, Duplication::All);
        let owner = part.assign(&g, 2);
        let descs = parse_query_list(MIX).unwrap();
        let specs = build_query_specs(
            &g,
            &dist,
            &owner,
            HardwareProfile::k40(),
            0,
            EnactConfig::default(),
            &descs,
        )
        .unwrap();
        let rb = residency_bytes(&dist);
        let fx = Fixture { rb, fps: specs.iter().map(|s| s.footprint_bytes).collect() };
        let pol = ServicePolicy {
            seed: 11,
            workers: 1,
            lanes: 0, // admission budget, not lane count, shapes the waves
            mem_cap,
            residency_bytes: rb,
            pressure: PressurePolicy::governed(),
        };
        f(&fx, Service::new(pol).run(&specs))
    }

    /// A cap that holds any one query comfortably but not the whole mix:
    /// the ledger splits the mix across waves — every query queued past
    /// wave 0 still runs and still answers exactly.
    #[test]
    fn a_tight_cap_queues_queries_instead_of_failing_them() {
        // Uncapped baseline for the exact results.
        let baseline = with_service(None, |_, rep| {
            assert!(rep.all_ok());
            assert_eq!(rep.waves, 1, "no cap, unbounded lanes: one wave");
            rep.outcomes.iter().map(|o| o.values.clone()).collect::<Vec<_>>()
        });
        let (cap, max_fp) = with_service(None, |fx, _| {
            let sum: u64 = fx.fps.iter().sum();
            let max = *fx.fps.iter().max().unwrap();
            // Watermarked budget admits any lone query, but the full mix
            // overflows it: 0.85 * cap >= rb + max_fp and cap < rb + sum.
            (((fx.rb + max) * 100 / 85 + 1).max(fx.rb + sum * 2 / 3), max)
        });
        with_service(Some(cap), |fx, rep| {
            assert!(rep.all_ok(), "a queueing cap must not fail any query");
            assert!(rep.waves > 1, "the ledger must split the mix across waves");
            let queued = rep.admission.iter().filter(|a| a.queued).count();
            assert!(queued > 0, "someone must wait");
            assert_eq!(rep.admission.len(), 4, "one admission record per query");
            for a in &rep.admission {
                assert!(!a.rejected);
                assert!(a.estimated_bytes >= fx.rb + fx.fps.iter().min().unwrap());
                assert!(a.budget_bytes >= fx.rb + max_fp, "budget admits any lone query");
            }
            for (o, base) in rep.outcomes.iter().zip(&baseline) {
                assert_eq!(&o.values, base, "queued query '{}' still answers exactly", o.name);
            }
        });
    }

    /// Below the floor — a cap no lone query fits under — admission rejects
    /// with the governor's typed `OutOfMemory`, never a panic, and the
    /// record says which budget was missed.
    #[test]
    fn below_the_floor_admission_rejects_with_a_typed_oom() {
        let floor = with_service(None, |fx, _| fx.rb + fx.fps.iter().min().unwrap());
        with_service(Some(floor - 1), |fx, rep| {
            assert!(!rep.all_ok());
            for (o, a) in rep.outcomes.iter().zip(rep.admission.iter()) {
                assert!(a.rejected, "query '{}' cannot fit alone", o.name);
                assert!(a.queued || a.wave.is_none(), "rejected queries hold no wave");
                let err = o.result.as_ref().expect_err("rejected queries carry the typed OOM");
                match err {
                    VgpuError::OutOfMemory { requested, capacity, .. } => {
                        assert_eq!(*requested, a.estimated_bytes);
                        assert_eq!(*capacity, floor - 1);
                        assert!(*requested >= fx.rb);
                    }
                    other => panic!("want OutOfMemory, got {other:?}"),
                }
                assert!(o.values.is_empty());
            }
        });
    }

    /// A cap between the floor and the biggest query rejects exactly the
    /// queries over it and queues the rest — per-query decisions, not a
    /// global verdict.
    #[test]
    fn a_mid_cap_rejects_only_the_queries_over_it() {
        let (cap, n_over) = with_service(None, |fx, _| {
            let max = *fx.fps.iter().max().unwrap();
            let cap = fx.rb + max - 1; // the biggest query misses by one byte
            (cap, fx.fps.iter().filter(|&&fp| fx.rb + fp > cap).count())
        });
        assert!(n_over >= 1);
        with_service(Some(cap), |fx, rep| {
            let rejected: Vec<usize> =
                rep.admission.iter().filter(|a| a.rejected).map(|a| a.query).collect();
            assert_eq!(rejected.len(), n_over, "exactly the over-cap queries are refused");
            for a in &rep.admission {
                let over = fx.rb + fx.fps[a.query] > cap;
                assert_eq!(a.rejected, over, "query {} decision must be per-query", a.query);
            }
            for o in &rep.outcomes {
                if rejected.contains(&o.query) {
                    assert!(o.result.is_err());
                } else {
                    assert!(o.result.is_ok(), "under-cap query '{}' must still run", o.name);
                    assert!(!o.values.is_empty());
                }
            }
        });
    }
}
