//! Integration tests of the simulation's operational properties:
//! reproducibility of the simulated clock, partitioner-independence of
//! results, and clean failure propagation from device threads.

use mgpu_graph_analytics::core::{AllocScheme, EnactConfig, RecoveryPolicy, Runner};
use mgpu_graph_analytics::gen::preferential_attachment;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{bfs::gather_labels, Bfs};
use mgpu_graph_analytics::vgpu::{FaultPlan, HardwareProfile, SimSystem, VgpuError};

fn graph() -> Csr<u32, u64> {
    GraphBuilder::undirected(&preferential_attachment(500, 8, 31))
}

#[test]
fn simulated_time_is_exactly_reproducible() {
    let g = graph();
    let run = || {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 4, Duplication::All);
        let sys = SimSystem::homogeneous(4, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let r = runner.enact(Some(0u32)).unwrap();
        (r.sim_time_us, r.totals, gather_labels(&runner, &dist))
    };
    let (t1, c1, l1) = run();
    let (t2, c2, l2) = run();
    assert_eq!(t1, t2, "simulated makespan must not depend on thread scheduling");
    assert_eq!(c1, c2, "counters must be deterministic");
    assert_eq!(l1, l2, "results must be deterministic");
}

#[test]
fn wall_clock_parallelism_does_not_change_results_across_repeats() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 8 }, 6, Duplication::All);
    let sys = SimSystem::homogeneous(6, HardwareProfile::k40());
    let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    let mut first = None;
    for _ in 0..10 {
        runner.enact(Some(7u32)).unwrap();
        let labels = gather_labels(&runner, &dist);
        match &first {
            None => first = Some(labels),
            Some(f) => assert_eq!(&labels, f),
        }
    }
}

#[test]
fn oom_on_one_device_aborts_cleanly_without_deadlock() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 1 }, 3, Duplication::All);
    // Device 1 is too small for its labels + buffers; Runner::new fails
    // with OutOfMemory rather than hanging or panicking.
    let profiles = vec![
        HardwareProfile::k40(),
        HardwareProfile::k40().with_capacity(2_000),
        HardwareProfile::k40(),
    ];
    let sys =
        SimSystem::new(profiles, mgpu_graph_analytics::vgpu::Interconnect::pcie3(3, 4)).unwrap();
    match Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()) {
        Err(VgpuError::OutOfMemory { device, .. }) => assert_eq!(device, 1),
        Err(e) => panic!("expected OOM on device 1, got error {e}"),
        Ok(_) => panic!("expected OOM on device 1, but init succeeded"),
    }
}

#[test]
fn mid_run_oom_is_reported_not_deadlocked() {
    // Enough memory to initialize, too little for just-enough growth on the
    // big middle iterations.
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 1 }, 2, Duplication::All);
    // labels 500*4 + topology ≈ 8600*... compute a budget that survives init:
    let topo: u64 = dist.parts.iter().map(|p| p.topology_bytes()).max().unwrap();
    let budget = topo + 4 * 500 + 2_500; // tight: init fits, growth may not
    let profiles = vec![
        HardwareProfile::k40().with_capacity(budget + (64 << 20)),
        HardwareProfile::k40().with_capacity(budget),
    ];
    let sys =
        SimSystem::new(profiles, mgpu_graph_analytics::vgpu::Interconnect::pcie3(2, 4)).unwrap();
    let config = EnactConfig { alloc_scheme: Some(AllocScheme::JustEnough), ..Default::default() };
    match Runner::new(sys, &dist, Bfs::default(), config) {
        Ok(mut runner) => match runner.enact(Some(0u32)) {
            Ok(_) => {} // budget happened to suffice — fine
            Err(VgpuError::OutOfMemory { device, .. }) => assert_eq!(device, 1),
            Err(e) => panic!("unexpected error {e}"),
        },
        Err(VgpuError::OutOfMemory { .. }) => {} // init-time OOM also acceptable
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn injected_transient_faults_keep_the_simulation_reproducible() {
    // Fault injection + in-place retry is part of the deterministic
    // simulation: two runs under the same plan agree bit-for-bit, recovery
    // log included (the deeper suite lives in tests/resilience.rs).
    let g = graph();
    let run = || {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 5 }, 4, Duplication::All);
        let mut sys = SimSystem::homogeneous(4, HardwareProfile::k40());
        sys.attach_fault_plan(&FaultPlan::new().kernel_fail(1, 3).transfer_fail(0, 2, 1));
        let config = EnactConfig {
            recovery: RecoveryPolicy {
                max_retries: 2,
                retry_backoff_us: 5.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        let r = runner.enact(Some(0u32)).unwrap();
        (r, gather_labels(&runner, &dist))
    };
    let (r1, l1) = run();
    let (r2, l2) = run();
    assert_eq!(l1, l2);
    assert!(r1.same_simulation(&r2), "fault handling must be schedule-independent");
    assert!(r1.recovery.kernel_retries >= 1 && r1.recovery.transfer_retries >= 1);
}

#[test]
fn partitioner_seed_changes_partition_but_not_answer() {
    let g = graph();
    let expect = mgpu_graph_analytics::primitives::reference::bfs(&g, 0u32);
    for seed in [1u64, 2, 3, 4] {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed }, 4, Duplication::All);
        let sys = SimSystem::homogeneous(4, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_labels(&runner, &dist), expect, "seed {seed}");
    }
}

#[test]
fn overhead_scaled_profiles_accepted_end_to_end() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 2, Duplication::All);
    let profile = HardwareProfile::k40().with_overhead_scale(256.0);
    let ic = mgpu_graph_analytics::vgpu::Interconnect::pcie3(2, 4).with_latency_scale(256.0);
    let sys = SimSystem::new(vec![profile; 2], ic).unwrap();
    let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    let r = runner.enact(Some(0u32)).unwrap();
    assert_eq!(
        gather_labels(&runner, &dist),
        mgpu_graph_analytics::primitives::reference::bfs(&g, 0u32)
    );
    assert!(r.sim_time_us > 0.0);
}
