//! Property-based tests of the vgpu substrate and I/O layers: simulated
//! clocks are monotone under arbitrary operation sequences, memory pools
//! account exactly, transfer costs are monotone in size, and MatrixMarket
//! round-trips preserve edge lists.

use proptest::prelude::*;

use mgpu_graph_analytics::graph::{read_mtx, write_mtx, Coo};
use mgpu_graph_analytics::vgpu::{
    Device, HardwareProfile, Interconnect, KernelKind, COMM_STREAM, COMPUTE_STREAM,
};

/// An arbitrary device operation.
#[derive(Debug, Clone)]
enum Op {
    Kernel { comm: bool, kind: u8, items: u16 },
    Charge { comm: bool, us: u16 },
    CrossWait,
    Superstep { n: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), 0u8..7, any::<u16>())
            .prop_map(|(comm, kind, items)| Op::Kernel { comm, kind, items }),
        (any::<bool>(), any::<u16>()).prop_map(|(comm, us)| Op::Charge { comm, us }),
        Just(Op::CrossWait),
        (1u8..6).prop_map(|n| Op::Superstep { n }),
    ]
}

fn kind_of(k: u8) -> KernelKind {
    match k {
        0 => KernelKind::Advance,
        1 => KernelKind::Filter,
        2 => KernelKind::FusedAdvanceFilter,
        3 => KernelKind::Compute,
        4 => KernelKind::Combine,
        5 => KernelKind::Split,
        _ => KernelKind::Bulk,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_clock_is_monotone_under_any_op_sequence(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut last = 0.0f64;
        for op in ops {
            match op {
                Op::Kernel { comm, kind, items } => {
                    let s = if comm { COMM_STREAM } else { COMPUTE_STREAM };
                    dev.kernel(s, kind_of(kind), || ((), items as u64)).unwrap();
                }
                Op::Charge { comm, us } => {
                    let s = if comm { COMM_STREAM } else { COMPUTE_STREAM };
                    dev.charge(s, us as f64 / 16.0, 0.0).unwrap();
                }
                Op::CrossWait => {
                    let ev = dev.record_event(COMPUTE_STREAM);
                    dev.stream_wait(COMM_STREAM, ev).unwrap();
                }
                Op::Superstep { n } => {
                    dev.end_superstep(n as usize, 0.0);
                }
            }
            let now = dev.now();
            prop_assert!(now >= last, "clock went backwards: {now} < {last}");
            prop_assert!(now.is_finite());
            last = now;
        }
    }

    #[test]
    fn kernel_work_accounting_matches_the_items_charged(
        items in prop::collection::vec(0u32..10_000, 1..30),
    ) {
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut expect_w = 0u64;
        let mut expect_c = 0u64;
        for (i, &n) in items.iter().enumerate() {
            let kind = if i % 3 == 0 { KernelKind::Combine } else { KernelKind::Advance };
            dev.kernel(COMPUTE_STREAM, kind, || ((), n as u64)).unwrap();
            if kind.is_communication_computation() {
                expect_c += n as u64;
            } else {
                expect_w += n as u64;
            }
        }
        prop_assert_eq!(dev.counters.w_items, expect_w);
        prop_assert_eq!(dev.counters.c_items, expect_c);
        prop_assert_eq!(dev.counters.kernel_launches, items.len() as u64);
    }

    #[test]
    fn pool_accounting_is_exact_under_alloc_free_sequences(
        sizes in prop::collection::vec(1usize..4_000, 1..40),
        keep_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let pool = mgpu_graph_analytics::vgpu::MemoryPool::new(0, 1 << 26);
        let mut live_model = 0u64;
        let mut held = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let a = pool.alloc::<u64>(n).unwrap();
            live_model += (n * 8) as u64;
            if keep_mask[i % keep_mask.len()] {
                held.push(a);
            } else {
                live_model -= (n * 8) as u64;
                drop(a);
            }
            prop_assert_eq!(pool.live(), live_model);
            prop_assert!(pool.peak() >= pool.live());
        }
        drop(held);
        let total: u64 = sizes.iter().map(|&n| (n * 8) as u64).sum();
        prop_assert_eq!(pool.live(), 0);
        prop_assert!(pool.peak() <= total);
    }

    #[test]
    fn transfer_cost_is_monotone_in_bytes_and_respects_topology(
        a in 0usize..8, b in 0usize..8, bytes in 0u64..(1 << 24),
    ) {
        let ic = Interconnect::pcie3(8, 4);
        let t1 = ic.transfer_us(a, b, bytes);
        let t2 = ic.transfer_us(a, b, bytes + 1024);
        prop_assert!(t2 >= t1);
        if a == b {
            prop_assert_eq!(t1, 0.0);
        } else {
            prop_assert!(t1 >= ic.latency_us(a, b));
            // symmetric links
            prop_assert_eq!(t1, ic.transfer_us(b, a, bytes));
        }
    }

    #[test]
    fn two_level_fabric_charges_more_across_nodes(
        bytes in 1u64..(1 << 22),
    ) {
        let ic = Interconnect::two_level(2, 4);
        let intra = ic.transfer_us(0, 3, bytes);
        let inter = ic.transfer_us(0, 4, bytes);
        prop_assert!(inter > intra);
    }

    #[test]
    fn mtx_round_trip_preserves_weighted_edges(
        n in 2usize..40,
        raw in prop::collection::vec((0u32..40, 0u32..40, 1u32..1000), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(s, d, _)| (s % n as u32, d % n as u32))
            .collect();
        let weights: Vec<u32> = raw.iter().map(|&(_, _, w)| w).collect();
        let coo = Coo::<u32>::from_edges(n, edges, Some(weights));
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx::<u32, _>(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.n_vertices, coo.n_vertices);
        prop_assert_eq!(back.edges, coo.edges);
        prop_assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn generators_are_seed_deterministic(seed in 0u64..1000, scale in 4u32..9) {
        use mgpu_graph_analytics::gen::{preferential_attachment, rmat, web_crawl, RmatParams};
        let n = 1usize << scale;
        prop_assert_eq!(
            rmat(scale, 4, RmatParams::paper(), seed).edges,
            rmat(scale, 4, RmatParams::paper(), seed).edges
        );
        prop_assert_eq!(
            preferential_attachment(n.max(16), 3, seed).edges,
            preferential_attachment(n.max(16), 3, seed).edges
        );
        prop_assert_eq!(web_crawl(n.max(16), 3, seed).edges, web_crawl(n.max(16), 3, seed).edges);
    }
}
