//! Randomized property tests of the vgpu substrate and I/O layers: simulated
//! clocks are monotone under arbitrary operation sequences, memory pools
//! account exactly, transfer costs are monotone in size, and MatrixMarket
//! round-trips preserve edge lists.
//!
//! These were originally written with `proptest`; the offline build vendors
//! only a minimal `rand`, so each property is now driven by a seeded ChaCha
//! stream over the same input distribution (fixed trial count, deterministic
//! per seed — failures reproduce exactly).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mgpu_graph_analytics::graph::{read_mtx, write_mtx, Coo};
use mgpu_graph_analytics::vgpu::{
    Device, HardwareProfile, Interconnect, KernelKind, COMM_STREAM, COMPUTE_STREAM,
};

const CASES: usize = 64;

/// An arbitrary device operation.
#[derive(Debug, Clone)]
enum Op {
    Kernel { comm: bool, kind: u8, items: u16 },
    Charge { comm: bool, us: u16 },
    CrossWait,
    Superstep { n: u8 },
}

fn arb_op(rng: &mut ChaCha8Rng) -> Op {
    match rng.gen_range(0usize..4) {
        0 => Op::Kernel {
            comm: rng.gen(),
            kind: rng.gen_range(0u8..7),
            items: rng.gen_range(0u32..=u16::MAX as u32) as u16,
        },
        1 => Op::Charge { comm: rng.gen(), us: rng.gen_range(0u32..=u16::MAX as u32) as u16 },
        2 => Op::CrossWait,
        _ => Op::Superstep { n: rng.gen_range(1u8..6) },
    }
}

fn kind_of(k: u8) -> KernelKind {
    match k {
        0 => KernelKind::Advance,
        1 => KernelKind::Filter,
        2 => KernelKind::FusedAdvanceFilter,
        3 => KernelKind::Compute,
        4 => KernelKind::Combine,
        5 => KernelKind::Split,
        _ => KernelKind::Bulk,
    }
}

#[test]
fn device_clock_is_monotone_under_any_op_sequence() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB21);
    for _ in 0..CASES {
        let ops: Vec<Op> = (0..rng.gen_range(0usize..60)).map(|_| arb_op(&mut rng)).collect();
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut last = 0.0f64;
        for op in ops {
            match op {
                Op::Kernel { comm, kind, items } => {
                    let s = if comm { COMM_STREAM } else { COMPUTE_STREAM };
                    dev.kernel(s, kind_of(kind), || ((), items as u64)).unwrap();
                }
                Op::Charge { comm, us } => {
                    let s = if comm { COMM_STREAM } else { COMPUTE_STREAM };
                    dev.charge(s, us as f64 / 16.0, 0.0).unwrap();
                }
                Op::CrossWait => {
                    let ev = dev.record_event(COMPUTE_STREAM);
                    dev.stream_wait(COMM_STREAM, ev).unwrap();
                }
                Op::Superstep { n } => {
                    dev.end_superstep(n as usize, 0.0);
                }
            }
            let now = dev.now();
            assert!(now >= last, "clock went backwards: {now} < {last}");
            assert!(now.is_finite());
            last = now;
        }
    }
}

#[test]
fn kernel_work_accounting_matches_the_items_charged() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB22);
    for _ in 0..CASES {
        let items: Vec<u32> =
            (0..rng.gen_range(1usize..30)).map(|_| rng.gen_range(0u32..10_000)).collect();
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut expect_w = 0u64;
        let mut expect_c = 0u64;
        for (i, &n) in items.iter().enumerate() {
            let kind = if i % 3 == 0 { KernelKind::Combine } else { KernelKind::Advance };
            dev.kernel(COMPUTE_STREAM, kind, || ((), n as u64)).unwrap();
            if kind.is_communication_computation() {
                expect_c += n as u64;
            } else {
                expect_w += n as u64;
            }
        }
        assert_eq!(dev.counters.w_items, expect_w);
        assert_eq!(dev.counters.c_items, expect_c);
        assert_eq!(dev.counters.kernel_launches, items.len() as u64);
    }
}

#[test]
fn pool_accounting_is_exact_under_alloc_free_sequences() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB23);
    for _ in 0..CASES {
        let sizes: Vec<usize> =
            (0..rng.gen_range(1usize..40)).map(|_| rng.gen_range(1usize..4_000)).collect();
        let keep_mask: Vec<bool> = (0..40).map(|_| rng.gen()).collect();
        let pool = mgpu_graph_analytics::vgpu::MemoryPool::new(0, 1 << 26);
        let mut live_model = 0u64;
        let mut held = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let a = pool.alloc::<u64>(n).unwrap();
            live_model += (n * 8) as u64;
            if keep_mask[i % keep_mask.len()] {
                held.push(a);
            } else {
                live_model -= (n * 8) as u64;
                drop(a);
            }
            assert_eq!(pool.live(), live_model);
            assert!(pool.peak() >= pool.live());
        }
        drop(held);
        let total: u64 = sizes.iter().map(|&n| (n * 8) as u64).sum();
        assert_eq!(pool.live(), 0);
        assert!(pool.peak() <= total);
    }
}

#[test]
fn transfer_cost_is_monotone_in_bytes_and_respects_topology() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB24);
    for _ in 0..CASES {
        let a = rng.gen_range(0usize..8);
        let b = rng.gen_range(0usize..8);
        let bytes = rng.gen_range(0u64..(1 << 24));
        let ic = Interconnect::pcie3(8, 4);
        let t1 = ic.transfer_us(a, b, bytes);
        let t2 = ic.transfer_us(a, b, bytes + 1024);
        assert!(t2 >= t1);
        if a == b {
            assert_eq!(t1, 0.0);
        } else {
            assert!(t1 >= ic.latency_us(a, b));
            // symmetric links
            assert_eq!(t1, ic.transfer_us(b, a, bytes));
        }
    }
}

#[test]
fn two_level_fabric_charges_more_across_nodes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB25);
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..(1 << 22));
        let ic = Interconnect::two_level(2, 4);
        let intra = ic.transfer_us(0, 3, bytes);
        let inter = ic.transfer_us(0, 4, bytes);
        assert!(inter > intra);
    }
}

#[test]
fn mtx_round_trip_preserves_weighted_edges() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB26);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..40);
        let raw: Vec<(u32, u32, u32)> = (0..rng.gen_range(0usize..80))
            .map(|_| (rng.gen_range(0u32..40), rng.gen_range(0u32..40), rng.gen_range(1u32..1000)))
            .collect();
        let edges: Vec<(u32, u32)> =
            raw.iter().map(|&(s, d, _)| (s % n as u32, d % n as u32)).collect();
        let weights: Vec<u32> = raw.iter().map(|&(_, _, w)| w).collect();
        let coo = Coo::<u32>::from_edges(n, edges, Some(weights));
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx::<u32, _>(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.n_vertices, coo.n_vertices);
        assert_eq!(back.edges, coo.edges);
        assert_eq!(back.weights, coo.weights);
    }
}

#[test]
fn generators_are_seed_deterministic() {
    use mgpu_graph_analytics::gen::{preferential_attachment, rmat, web_crawl, RmatParams};
    let mut rng = ChaCha8Rng::seed_from_u64(0xB27);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..1000);
        let scale = rng.gen_range(4u32..9);
        let n = 1usize << scale;
        assert_eq!(
            rmat(scale, 4, RmatParams::paper(), seed).edges,
            rmat(scale, 4, RmatParams::paper(), seed).edges
        );
        assert_eq!(
            preferential_attachment(n.max(16), 3, seed).edges,
            preferential_attachment(n.max(16), 3, seed).edges
        );
        assert_eq!(web_crawl(n.max(16), 3, seed).edges, web_crawl(n.max(16), 3, seed).edges);
    }
}
