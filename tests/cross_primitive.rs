//! Cross-crate integration: every primitive × every partitioner × GPU
//! counts, validated against the CPU references — the paper's "computations
//! are verified for correctness" (§VII-A) as an executable statement.

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{preferential_attachment, web_crawl};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{
    BiasedRandomPartitioner, DistGraph, Duplication, MultilevelPartitioner, Partitioner,
    RandomPartitioner,
};
use mgpu_graph_analytics::primitives::{
    bc::gather_bc, bfs::gather_labels, cc::gather_components, dobfs, pr::gather_ranks, reference,
    sssp::gather_dists, Bc, Bfs, Cc, Dobfs, Pagerank, Sssp,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

fn test_graph() -> Csr<u32, u64> {
    let mut coo = preferential_attachment(300, 7, 99);
    add_paper_weights(&mut coo, 100);
    GraphBuilder::undirected(&coo)
}

fn partitions(g: &Csr<u32, u64>, n: usize) -> Vec<(&'static str, Vec<u32>)> {
    vec![
        ("random", RandomPartitioner { seed: 5 }.assign(g, n)),
        ("biased", BiasedRandomPartitioner { seed: 5, slack: 0.1 }.assign(g, n)),
        ("metis-like", MultilevelPartitioner { seed: 5, ..Default::default() }.assign(g, n)),
    ]
}

#[test]
fn bfs_correct_under_every_partitioner_and_gpu_count() {
    let g = test_graph();
    let expect = reference::bfs(&g, 0u32);
    for n in [1usize, 2, 3, 5] {
        for (name, owner) in partitions(&g, n) {
            let dist = DistGraph::build(&g, owner, n, Duplication::All);
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let mut runner =
                Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
            runner.enact(Some(0u32)).unwrap();
            assert_eq!(gather_labels(&runner, &dist), expect, "{name} x{n}");
        }
    }
}

#[test]
fn dobfs_correct_under_every_partitioner() {
    let g = test_graph();
    let expect = reference::bfs(&g, 3u32);
    for n in [2usize, 4] {
        for (name, owner) in partitions(&g, n) {
            let mut dist = DistGraph::build(&g, owner, n, Duplication::All);
            dist.build_cscs();
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let mut runner =
                Runner::new(sys, &dist, Dobfs::default(), EnactConfig::default()).unwrap();
            runner.enact(Some(3u32)).unwrap();
            assert_eq!(dobfs::gather_labels(&runner, &dist), expect, "{name} x{n}");
        }
    }
}

#[test]
fn sssp_correct_under_every_partitioner() {
    let g = test_graph();
    let expect = reference::sssp(&g, 1u32);
    for n in [2usize, 3] {
        for (name, owner) in partitions(&g, n) {
            let dist = DistGraph::build(&g, owner, n, Duplication::All);
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let mut runner = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
            runner.enact(Some(1u32)).unwrap();
            assert_eq!(gather_dists(&runner, &dist), expect, "{name} x{n}");
        }
    }
}

#[test]
fn cc_correct_on_fragmented_graph() {
    // several components of varying sizes
    let mut coo = preferential_attachment(150, 4, 7);
    coo.n_vertices = 180; // 30 isolated vertices
    coo.push(160, 161);
    coo.push(161, 162);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let expect = reference::cc(&g);
    for n in [1usize, 2, 4] {
        for (name, owner) in partitions(&g, n) {
            let dist = DistGraph::build(&g, owner, n, Duplication::All);
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let mut runner = Runner::new(sys, &dist, Cc, EnactConfig::default()).unwrap();
            runner.enact(None).unwrap();
            assert_eq!(gather_components(&runner, &dist), expect, "{name} x{n}");
        }
    }
}

#[test]
fn pagerank_matches_reference_under_every_partitioner() {
    let g = test_graph();
    let expect = reference::pagerank(&g, 0.85, 15);
    for n in [2usize, 4] {
        for (name, owner) in partitions(&g, n) {
            let dist = DistGraph::build(&g, owner, n, Duplication::All);
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 15 };
            let mut runner = Runner::new(sys, &dist, pr, EnactConfig::default()).unwrap();
            runner.enact(None).unwrap();
            for (v, (&a, &b)) in gather_ranks(&runner, &dist).iter().zip(&expect).enumerate() {
                assert!(
                    (a as f64 - b).abs() < 1e-3 * (b + 1e-12),
                    "{name} x{n} vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn bc_matches_brandes_under_every_partitioner() {
    let g = test_graph();
    let expect = reference::bc(&g, 2u32);
    for n in [2usize, 3] {
        for (name, owner) in partitions(&g, n) {
            let dist = DistGraph::build(&g, owner, n, Duplication::All);
            let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
            let mut runner = Runner::new(sys, &dist, Bc, EnactConfig::default()).unwrap();
            runner.enact(Some(2u32)).unwrap();
            for (v, (&a, &b)) in gather_bc(&runner, &dist).iter().zip(&expect).enumerate() {
                assert!(
                    (a as f64 - b).abs() < 1e-3 * (1.0 + b),
                    "{name} x{n} vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn web_graph_end_to_end_all_primitives() {
    // a different topology class end-to-end
    let mut coo = web_crawl(400, 6, 21);
    add_paper_weights(&mut coo, 22);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let n = 3;
    let owner = RandomPartitioner { seed: 9 }.assign(&g, n);

    let mut dist = DistGraph::build(&g, owner, n, Duplication::All);
    dist.build_cscs();

    let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
    let mut bfs = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    bfs.enact(Some(0u32)).unwrap();
    assert_eq!(gather_labels(&bfs, &dist), reference::bfs(&g, 0u32));

    let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
    let mut dob = Runner::new(sys, &dist, Dobfs::default(), EnactConfig::default()).unwrap();
    dob.enact(Some(0u32)).unwrap();
    assert_eq!(dobfs::gather_labels(&dob, &dist), reference::bfs(&g, 0u32));

    let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
    let mut ss = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
    ss.enact(Some(0u32)).unwrap();
    assert_eq!(gather_dists(&ss, &dist), reference::sssp(&g, 0u32));
}
