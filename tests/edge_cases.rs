//! Edge-case integration tests: degenerate graphs, sources, and
//! configurations that historically break BSP graph frameworks.

use mgpu_graph_analytics::core::{AllocScheme, CommStrategy, EnactConfig, Runner};
use mgpu_graph_analytics::gen::smallworld::chain;
use mgpu_graph_analytics::gen::{gnm, preferential_attachment};
use mgpu_graph_analytics::graph::{Coo, Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, Bfs, Cc, Dobfs, Pagerank,
};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

const INF: u32 = u32::MAX;

fn run_bfs(g: &Csr<u32, u64>, n: usize, src: u32) -> Vec<u32> {
    let dist = DistGraph::partition(g, &RandomPartitioner { seed: 1 }, n, Duplication::All);
    let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
    let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    runner.enact(Some(src)).unwrap();
    gather_labels(&runner, &dist)
}

#[test]
fn single_vertex_graph() {
    let g: Csr<u32, u64> = Csr::empty(1);
    assert_eq!(run_bfs(&g, 1, 0), vec![0]);
}

#[test]
fn edgeless_graph_on_many_gpus() {
    let g: Csr<u32, u64> = Csr::empty(10);
    let labels = run_bfs(&g, 4, 3);
    let mut expect = vec![INF; 10];
    expect[3] = 0;
    assert_eq!(labels, expect);
}

#[test]
fn source_in_a_tiny_component() {
    // source isolated from the giant component: one superstep, almost all INF
    let mut coo = gnm(100, 400, 3);
    coo.n_vertices = 102;
    coo.push(100, 101);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let labels = run_bfs(&g, 3, 100);
    assert_eq!(labels[100], 0);
    assert_eq!(labels[101], 1);
    assert!(labels[..100].iter().all(|&l| l == INF));
}

#[test]
fn more_gpus_than_frontier_ever_uses() {
    // a 3-vertex path on 6 GPUs: most devices idle every superstep but the
    // barrier protocol must still terminate
    let coo = Coo::from_edges(3, vec![(0, 1), (1, 2)], None);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    assert_eq!(run_bfs(&g, 6, 0), vec![0, 1, 2]);
}

#[test]
fn self_loops_and_parallel_edges_survive_raw_builds() {
    // bypass the cleaning builder: the framework must still be correct
    let coo = Coo::from_edges(4, vec![(0, 0), (0, 1), (0, 1), (1, 2), (2, 3)], None);
    let g: Csr<u32, u64> =
        GraphBuilder::build(&coo, mgpu_graph_analytics::graph::BuildOptions::raw());
    let labels = run_bfs(&g, 2, 0);
    assert_eq!(labels, reference::bfs(&g, 0u32));
}

#[test]
fn dobfs_on_a_chain_never_switches_but_stays_correct() {
    // chain: FV stays tiny, backward never profitable
    let g: Csr<u32, u64> = GraphBuilder::undirected(&chain(64));
    let mut dist = DistGraph::partition(&g, &RandomPartitioner { seed: 2 }, 2, Duplication::All);
    dist.build_cscs();
    let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
    let mut runner = Runner::new(sys, &dist, Dobfs::default(), EnactConfig::default()).unwrap();
    runner.enact(Some(0u32)).unwrap();
    let labels = mgpu_graph_analytics::primitives::dobfs::gather_labels(&runner, &dist);
    assert_eq!(labels, reference::bfs(&g, 0u32));
}

#[test]
fn pagerank_on_a_single_gpu_with_zero_threshold_runs_to_cap() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(30, 120, 4));
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 5 }, 1, Duplication::All);
    let sys = SimSystem::homogeneous(1, HardwareProfile::k40());
    let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 7 };
    let mut runner = Runner::new(sys, &dist, pr, EnactConfig::default()).unwrap();
    let r = runner.enact(None).unwrap();
    assert_eq!(r.iterations, 8, "1 spread + 7 updates");
}

#[test]
fn cc_single_edge_graph_across_gpus() {
    let coo = Coo::from_edges(2, vec![(0, 1)], None);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let dist = DistGraph::build(&g, vec![0, 1], 2, Duplication::All);
    let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
    let mut runner = Runner::new(sys, &dist, Cc, EnactConfig::default()).unwrap();
    runner.enact(None).unwrap();
    assert_eq!(gather_components(&runner, &dist), vec![0, 0]);
}

#[test]
fn comm_override_changes_volume_but_not_answer() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(300, 6, 8));
    let expect = reference::bfs(&g, 0u32);
    let mut volumes = Vec::new();
    for comm in [CommStrategy::Selective, CommStrategy::Broadcast] {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 3, Duplication::All);
        let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
        let config = EnactConfig { comm: Some(comm), ..Default::default() };
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        let r = runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_labels(&runner, &dist), expect);
        volumes.push(r.totals.h_vertices);
    }
    assert!(volumes[1] > volumes[0], "broadcast moves more vertices than selective");
}

#[test]
fn alloc_scheme_override_changes_memory_but_not_answer() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(300, 6, 9));
    let expect = reference::bfs(&g, 0u32);
    let mut peaks = Vec::new();
    for scheme in [AllocScheme::JustEnough, AllocScheme::Max] {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 2, Duplication::All);
        let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
        let config = EnactConfig { alloc_scheme: Some(scheme), ..Default::default() };
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_labels(&runner, &dist), expect);
        peaks.push(runner.system().peak_memory_per_device());
    }
    assert!(peaks[1] > peaks[0], "max allocation uses more device memory");
}

#[test]
fn max_iterations_override_truncates_cleanly() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&chain(64));
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 2, Duplication::All);
    let sys = SimSystem::homogeneous(2, HardwareProfile::k40());
    let config = EnactConfig { max_iterations: Some(5), ..Default::default() };
    let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
    let r = runner.enact(Some(0u32)).unwrap();
    assert_eq!(r.iterations, 5);
    let labels = gather_labels(&runner, &dist);
    assert!(labels.iter().filter(|&&l| l != INF).count() <= 6, "at most depth 5 reached");
}

#[test]
fn superstep_history_tracks_the_frontier_wave() {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(400, 8, 12));
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 2 }, 3, Duplication::All);
    let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    let r = runner.enact(Some(0u32)).unwrap();
    assert_eq!(r.history.len(), r.iterations);
    assert_eq!(r.history[0].input, 1, "the wave starts at the source");
    // the final superstep may still *produce* candidates (late proxy
    // discoveries the owners already know), but none survive combining
    assert_eq!(r.history.last().unwrap().combined, 0, "the wave dies out");
    // every vertex the traversal reached (beyond the source) entered exactly
    // one superstep's next-input frontier
    let labels = gather_labels(&runner, &dist);
    let reached = labels.iter().filter(|&&l| l != INF && l != 0).count() as u64;
    let combined: u64 = r.history.iter().map(|t| t.combined).sum();
    assert_eq!(combined, reached);
    // under selective comm, the iteration output splits into a local part
    // and the sent part — so sent never exceeds what was produced
    for t in &r.history {
        assert!(t.sent <= t.output, "sent {} > output {}", t.sent, t.output);
    }
}
