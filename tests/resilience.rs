//! End-to-end tests of deterministic fault injection and recovery: the
//! resilience contract of ISSUE 2.
//!
//! * Determinism — the same fault plan produces a bit-identical simulation
//!   (results, clocks, counters, *and* recovery log), independent of host
//!   thread scheduling and `kernel_threads`.
//! * Correctness under recovery — BFS / SSSP / CC complete after transient
//!   faults, panics, stragglers and permanent device loss, and their
//!   results equal the fault-free reference.
//! * Zero overhead when disabled — an attached plan whose events never
//!   fire changes nothing about the simulation.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

use mgpu_graph_analytics::core::alloc::FrontierBufs;
use mgpu_graph_analytics::core::problem::MgpuProblem;
use mgpu_graph_analytics::core::{CommStrategy, EnactConfig, RecoveryPolicy, ResilientRunner, Runner};
use mgpu_graph_analytics::gen::weights::add_paper_weights;
use mgpu_graph_analytics::gen::{gnm, preferential_attachment};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner, SubGraph};
use mgpu_graph_analytics::primitives::{
    bfs::gather_labels, cc::gather_components, reference, sssp::gather_dists, Bfs, Cc, Sssp,
};
use mgpu_graph_analytics::vgpu::{Device, FaultPlan, HardwareProfile, Result, SimSystem, VgpuError};

fn graph() -> Csr<u32, u64> {
    GraphBuilder::undirected(&preferential_attachment(400, 6, 11))
}

fn weighted_graph() -> Csr<u32, u64> {
    let mut coo = gnm(300, 1500, 23);
    add_paper_weights(&mut coo, 5);
    GraphBuilder::undirected(&coo)
}

fn resilient_config() -> EnactConfig {
    EnactConfig {
        recovery: RecoveryPolicy { checkpoint_interval: 2, ..RecoveryPolicy::resilient() },
        ..Default::default()
    }
}

/// A plan mixing transients with a permanent loss of device 1 mid-run.
fn loss_plan() -> FaultPlan {
    FaultPlan::new().kernel_fail(0, 3).transient_oom(2, 5).device_loss(1, 9)
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

#[test]
fn same_fault_plan_produces_bit_identical_reports_including_recovery() {
    let g = graph();
    let run = || {
        ResilientRunner::homogeneous(
            &g,
            Bfs::default(),
            4,
            HardwareProfile::k40(),
            resilient_config(),
        )
        .with_fault_plan(loss_plan())
        .enact_with(Some(0u32), gather_labels)
        .unwrap()
    };
    let (r1, l1) = run();
    let (r2, l2) = run();
    assert_eq!(l1, l2, "recovered results must be deterministic");
    assert!(r1.same_simulation(&r2), "recovered simulations must be bit-identical");
    assert!(!r1.recovery.is_quiet(), "the plan must actually have fired");
    assert_eq!(r1.recovery.lost_devices, vec![1]);
    assert_eq!(r1.recovery.failovers, 1);
    assert!(r1.recovery.kernel_retries >= 2, "both transients retried in place");
}

#[test]
fn kernel_thread_count_does_not_change_a_recovered_simulation() {
    let g = weighted_graph();
    let run = |threads: usize| {
        let config = EnactConfig { kernel_threads: Some(threads), ..resilient_config() };
        ResilientRunner::homogeneous(&g, Sssp, 4, HardwareProfile::k40(), config)
            .with_fault_plan(loss_plan())
            .enact_with(Some(0u32), gather_dists)
            .unwrap()
    };
    let (r1, d1) = run(1);
    let (r4, d4) = run(4);
    assert_eq!(d1, d4, "distances must not depend on kernel_threads");
    assert!(r1.same_simulation(&r4), "kernel_threads is wall-clock-only, even under faults");
}

#[test]
fn a_plan_that_never_fires_is_bit_identical_to_no_plan() {
    let g = graph();
    let run = |plan: Option<FaultPlan>| {
        let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 4, Duplication::All);
        let mut sys = SimSystem::homogeneous(4, HardwareProfile::k40());
        if let Some(p) = plan {
            sys.attach_fault_plan(&p);
        }
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        (report, gather_labels(&runner, &dist))
    };
    let (bare, labels_bare) = run(None);
    let (empty, labels_empty) = run(Some(FaultPlan::new()));
    // events far beyond the horizon never fire either
    let (idle, labels_idle) = run(Some(FaultPlan::new().kernel_fail(0, 1 << 40)));
    assert_eq!(labels_bare, labels_empty);
    assert_eq!(labels_bare, labels_idle);
    assert!(bare.same_simulation(&empty), "an empty plan must be invisible");
    assert!(bare.same_simulation(&idle), "an unfired plan must be invisible");
    assert!(bare.recovery.is_quiet() && idle.recovery.is_quiet());
}

// ---------------------------------------------------------------------------
// correctness after recovery
// ---------------------------------------------------------------------------

#[test]
fn bfs_sssp_cc_survive_device_loss_across_gpu_counts_and_comm_strategies() {
    let g = weighted_graph();
    let bfs_expect = reference::bfs(&g, 0u32);
    let sssp_expect = reference::sssp(&g, 0u32);
    let cc_expect = reference::cc(&g);
    for n in [2usize, 4, 8] {
        // Lose the last device so every configuration has a victim.
        let plan = FaultPlan::new().device_loss(n - 1, 7);
        for comm in [None, Some(CommStrategy::Broadcast)] {
            let config = EnactConfig { comm, ..resilient_config() };
            let ctx = format!("{n} GPUs, comm {comm:?}");

            let (br, bl) =
                ResilientRunner::homogeneous(&g, Bfs::default(), n, HardwareProfile::k40(), config)
                    .with_fault_plan(plan.clone())
                    .enact_with(Some(0u32), gather_labels)
                    .unwrap();
            assert_eq!(bl, bfs_expect, "BFS after loss, {ctx}");
            assert_eq!(br.n_devices, n - 1, "BFS must finish on the survivors, {ctx}");
            assert_eq!(br.recovery.lost_devices, vec![n - 1], "{ctx}");

            let (_, dl) = ResilientRunner::homogeneous(&g, Sssp, n, HardwareProfile::k40(), config)
                .with_fault_plan(plan.clone())
                .enact_with(Some(0u32), gather_dists)
                .unwrap();
            assert_eq!(dl, sssp_expect, "SSSP after loss, {ctx}");

            // CC fixes its own comm strategy; only exercise it once per n.
            if comm.is_none() {
                let (_, cl) =
                    ResilientRunner::homogeneous(&g, Cc, n, HardwareProfile::k40(), config)
                        .with_fault_plan(plan.clone())
                        .enact_with(None, gather_components)
                        .unwrap();
                assert_eq!(cl, cc_expect, "CC after loss, {n} GPUs");
            }
        }
    }
}

#[test]
fn transient_faults_are_retried_in_place_and_leave_results_intact() {
    let g = graph();
    let expect = reference::bfs(&g, 0u32);
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 3, Duplication::All);
    let mut sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    sys.attach_fault_plan(
        &FaultPlan::new().kernel_fail(0, 2).transient_oom(1, 4).transfer_fail(0, 1, 1),
    );
    let config = EnactConfig {
        recovery: RecoveryPolicy { max_retries: 3, retry_backoff_us: 10.0, ..Default::default() },
        ..Default::default()
    };
    let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
    let report = runner.enact(Some(0u32)).unwrap();
    assert_eq!(gather_labels(&runner, &dist), expect);
    assert_eq!(report.recovery.kernel_retries, 2, "one relaunch per kernel transient");
    assert_eq!(report.recovery.transfer_retries, 1, "one re-send for the link fault");
    assert_eq!(report.recovery.faults_injected, 3);
    assert!(report.recovery.backoff_us > 0.0, "retries charge simulated backoff");
}

#[test]
fn without_a_retry_budget_transients_surface_as_typed_errors() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 3, Duplication::All);
    type ErrCheck = fn(&VgpuError) -> bool;
    let cases: [(FaultPlan, ErrCheck); 3] = [
        (FaultPlan::new().kernel_fail(1, 2), |e| {
            matches!(e, VgpuError::KernelFailed { device: 1 })
        }),
        (FaultPlan::new().device_loss(2, 2), |e| matches!(e, VgpuError::DeviceLost { device: 2 })),
        (FaultPlan::new().transfer_fail(0, 1, 0), |e| {
            matches!(e, VgpuError::TransferFailed { from: 0, to: 1 })
        }),
    ];
    for (plan, check) in cases {
        let mut sys = SimSystem::homogeneous(3, HardwareProfile::k40());
        sys.attach_fault_plan(&plan);
        let mut runner = Runner::new(sys, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let err = runner.enact(Some(0u32)).unwrap_err();
        assert!(check(&err), "got {err}");
    }
}

#[test]
fn checkpoints_bound_the_recomputation_after_a_late_loss() {
    let g = weighted_graph();
    let expect = reference::sssp(&g, 0u32);
    // SSSP runs for many supersteps; lose a device late so a checkpoint
    // exists to resume from.
    let (report, dists) =
        ResilientRunner::homogeneous(&g, Sssp, 4, HardwareProfile::k40(), resilient_config())
            .with_fault_plan(FaultPlan::new().device_loss(2, 60))
            .enact_with(Some(0u32), gather_dists)
            .unwrap();
    assert_eq!(dists, expect);
    assert!(report.recovery.checkpoints_taken >= 1, "a checkpoint must have completed");
    let resumed = report.recovery.resumed_at.expect("the retry must resume from a checkpoint");
    assert!(resumed >= 2, "resume point is a checkpointed superstep boundary, got {resumed}");
    assert!(report.recovery.lost_time_us > 0.0, "discarded work is accounted");
    assert!(report.sim_time_us > report.recovery.lost_time_us);
}

#[test]
fn straggling_devices_are_detected_and_evicted_on_timeout() {
    let g = graph();
    let expect = reference::bfs(&g, 0u32);
    let config = EnactConfig {
        recovery: RecoveryPolicy {
            straggler_timeout_us: 1_000.0,
            evict_stragglers: true,
            degrade_on_loss: true,
            checkpoint_interval: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let (report, labels) =
        ResilientRunner::homogeneous(&g, Bfs::default(), 4, HardwareProfile::k40(), config)
            .with_fault_plan(FaultPlan::new().straggle(3, 6, 50_000.0))
            .enact_with(Some(0u32), gather_labels)
            .unwrap();
    assert_eq!(labels, expect);
    assert!(report.recovery.stragglers_detected >= 1);
    assert_eq!(report.recovery.lost_devices, vec![3], "the straggler is evicted");
    assert_eq!(report.n_devices, 3);
}

// ---------------------------------------------------------------------------
// panic capture
// ---------------------------------------------------------------------------

/// A BFS whose iteration panics exactly once (on the flag's first visit),
/// modelling a crash in problem code rather than an injected fault.
#[derive(Clone)]
struct PanicOnce {
    inner: Bfs,
    fired: Arc<AtomicBool>,
}

impl MgpuProblem<u32, u64> for PanicOnce {
    type State = <Bfs as MgpuProblem<u32, u64>>::State;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "panic-once BFS"
    }
    fn duplication(&self) -> Duplication {
        <Bfs as MgpuProblem<u32, u64>>::duplication(&self.inner)
    }
    fn comm(&self) -> CommStrategy {
        <Bfs as MgpuProblem<u32, u64>>::comm(&self.inner)
    }
    fn init(&self, dev: &mut Device, sub: &SubGraph<u32, u64>) -> Result<Self::State> {
        self.inner.init(dev, sub)
    }
    fn reset(
        &self,
        dev: &mut Device,
        sub: &SubGraph<u32, u64>,
        state: &mut Self::State,
        src: Option<u32>,
    ) -> Result<Vec<u32>> {
        self.inner.reset(dev, sub, state, src)
    }
    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<u32, u64>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<u32>,
        input: &[u32],
        iter: usize,
    ) -> Result<Vec<u32>> {
        if iter == 1 && !self.fired.swap(true, SeqCst) {
            panic!("injected problem-code crash");
        }
        self.inner.iteration(dev, sub, state, bufs, input, iter)
    }
    fn package(&self, state: &Self::State, v: u32) -> u32 {
        <Bfs as MgpuProblem<u32, u64>>::package(&self.inner, state, v)
    }
    fn combine(&self, state: &mut Self::State, v: u32, msg: &u32) -> bool {
        <Bfs as MgpuProblem<u32, u64>>::combine(&self.inner, state, v, msg)
    }
    fn supports_checkpoint(&self) -> bool {
        <Bfs as MgpuProblem<u32, u64>>::supports_checkpoint(&self.inner)
    }
    fn checkpoint_word(&self, state: &Self::State, v: u32) -> u64 {
        <Bfs as MgpuProblem<u32, u64>>::checkpoint_word(&self.inner, state, v)
    }
    fn restore_word(&self, state: &mut Self::State, v: u32, word: u64) {
        <Bfs as MgpuProblem<u32, u64>>::restore_word(&self.inner, state, v, word)
    }
}

#[test]
fn a_panic_in_problem_code_becomes_device_lost_not_a_process_abort() {
    let g = graph();
    let dist = DistGraph::partition(&g, &RandomPartitioner { seed: 3 }, 3, Duplication::All);
    let sys = SimSystem::homogeneous(3, HardwareProfile::k40());
    let problem = PanicOnce { inner: Bfs::default(), fired: Arc::new(AtomicBool::new(false)) };
    let mut runner = Runner::new(sys, &dist, problem, EnactConfig::default()).unwrap();
    match runner.enact(Some(0u32)) {
        Err(VgpuError::DeviceLost { .. }) => {}
        other => panic!("expected DeviceLost from a panicking iteration, got {other:?}"),
    }
}

#[test]
fn the_resilient_runner_recovers_from_a_problem_code_panic() {
    let g = graph();
    let expect = reference::bfs(&g, 0u32);
    let problem = PanicOnce { inner: Bfs::default(), fired: Arc::new(AtomicBool::new(false)) };
    let (report, labels) =
        ResilientRunner::homogeneous(&g, problem, 3, HardwareProfile::k40(), resilient_config())
            .enact_with(Some(0u32), |r, d| {
                mgpu_graph_analytics::primitives::bfs::gather(d, |gpu, local| {
                    r.state(gpu).labels[local as usize]
                })
            })
            .unwrap();
    assert_eq!(labels, expect, "BFS completes correctly after the crash");
    assert_eq!(report.recovery.failovers, 1);
    assert_eq!(report.n_devices, 2, "the crashed device is retired");
}

// ---------------------------------------------------------------------------
// plan plumbing
// ---------------------------------------------------------------------------

#[test]
fn parsed_and_built_plans_agree() {
    let parsed = FaultPlan::parse("kfail:0@3, oom:2@5, lose:1@9").unwrap();
    assert_eq!(parsed, loss_plan());
    assert!(FaultPlan::parse("explode:0@1").is_err());
    assert!(FaultPlan::parse("kfail:0").is_err());
}

#[test]
fn random_plans_are_seed_deterministic_and_recoverable() {
    let g = graph();
    assert_eq!(FaultPlan::random(9, 4, 5, 50), FaultPlan::random(9, 4, 5, 50));
    assert_ne!(FaultPlan::random(9, 4, 5, 50), FaultPlan::random(10, 4, 5, 50));
    let expect = reference::bfs(&g, 0u32);
    for seed in 0..4u64 {
        let plan = FaultPlan::random(seed, 4, 6, 60);
        let (report, labels) = ResilientRunner::homogeneous(
            &g,
            Bfs::default(),
            4,
            HardwareProfile::k40(),
            resilient_config(),
        )
        .with_fault_plan(plan)
        .enact_with(Some(0u32), gather_labels)
        .unwrap();
        assert_eq!(labels, expect, "seed {seed}");
        // Random plans are transient-only, so no device may be lost.
        assert!(report.recovery.lost_devices.is_empty(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// traced variants: recovery machinery shows up in the structured trace
// ---------------------------------------------------------------------------

#[test]
fn traced_transient_recovery_pairs_retries_and_checkpoints_with_events() {
    use mgpu_graph_analytics::core::Profile;
    let g = weighted_graph();
    let run = |threads: usize| {
        let config =
            EnactConfig { tracing: true, kernel_threads: Some(threads), ..resilient_config() };
        ResilientRunner::homogeneous(&g, Sssp, 4, HardwareProfile::k40(), config)
            .with_fault_plan(
                FaultPlan::new().kernel_fail(0, 2).transient_oom(1, 4).transfer_fail(0, 1, 1),
            )
            .enact_with(Some(0u32), gather_dists)
            .unwrap()
    };
    let (r1, d1) = run(1);
    let (r4, d4) = run(4);
    assert_eq!(d1, d4, "recovered distances must not depend on kernel_threads");
    assert!(r1.same_simulation(&r4));
    let trace = r1.trace.as_ref().unwrap();
    assert_eq!(
        trace.to_jsonl(),
        r4.trace.as_ref().unwrap().to_jsonl(),
        "faulty traces must be byte-identical across kernel-thread counts"
    );
    let p = Profile::from_trace(trace);
    p.reconcile(&r1).unwrap();
    // All three transients survive in place — one attempt, so every retry
    // the recovery log counted has a span in the trace.
    assert_eq!(p.total.retries, r1.recovery.kernel_retries + r1.recovery.transfer_retries);
    assert!(p.total.retries >= 3, "all three injected transients retried");
    assert!(p.total.checkpoints > 0, "checkpoint offers appear in the trace");
}

#[test]
fn traced_failover_trace_is_deterministic_and_reconciles_with_lost_time() {
    use mgpu_graph_analytics::core::Profile;
    let g = graph();
    let run = |threads: usize| {
        let config =
            EnactConfig { tracing: true, kernel_threads: Some(threads), ..resilient_config() };
        ResilientRunner::homogeneous(&g, Bfs::default(), 4, HardwareProfile::k40(), config)
            .with_fault_plan(loss_plan())
            .enact_with(Some(0u32), gather_labels)
            .unwrap()
    };
    let (r1, l1) = run(1);
    let (r4, l4) = run(4);
    assert_eq!(l1, l4);
    assert!(r1.same_simulation(&r4));
    let trace = r1.trace.as_ref().unwrap();
    assert_eq!(
        trace.to_jsonl(),
        r4.trace.as_ref().unwrap().to_jsonl(),
        "a failover run's trace must be byte-identical across kernel-thread counts"
    );
    // The trace describes the surviving attempt; its makespan plus the
    // recorded lost time reproduces sim_time_us bitwise — reconcile checks
    // exactly that.
    let p = Profile::from_trace(trace);
    p.reconcile(&r1).unwrap();
    assert!(r1.recovery.lost_time_us > 0.0, "the loss must have discarded work");
    assert!(p.makespan_us < r1.sim_time_us, "lost time is outside the surviving trace");
    assert!(p.total.checkpoints > 0, "checkpoints that bounded the recomputation are in the trace");
    // Dense superstep history survives the checkpoint resume: one entry per
    // superstep, with absolute indices.
    assert_eq!(r1.history.len(), r1.iterations, "resumed-run history must stay dense");
}
