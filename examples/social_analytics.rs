//! Social-network analytics: the workload the paper's introduction
//! motivates — run PageRank, betweenness centrality and connected
//! components over one partitioned social graph, reusing the same
//! multi-GPU machinery for all three primitives.
//!
//! ```sh
//! cargo run --release --example social_analytics
//! ```

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::gen::preferential_attachment;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::bc::gather_bc;
use mgpu_graph_analytics::primitives::cc::gather_components;
use mgpu_graph_analytics::primitives::pr::gather_ranks;
use mgpu_graph_analytics::primitives::{Bc, Cc, Pagerank};
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

fn top5(scores: &[f32]) -> Vec<(usize, f32)> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx.into_iter().take(5).map(|v| (v, scores[v])).collect()
}

fn main() {
    // A 20k-member social network analog (power-law, shallow diameter).
    let graph: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(20_000, 12, 7));
    println!("social graph: {} members, {} directed edges", graph.n_vertices(), graph.n_edges());

    // One partition, reused by every primitive (all three use
    // duplicate-all, so the host graphs are shared).
    let dist = DistGraph::partition(&graph, &RandomPartitioner::default(), 4, Duplication::All);

    // --- PageRank: who is influential by link structure? ---
    let pr = Pagerank { damping: 0.85, threshold: 1e-6, max_iters: 50 };
    let mut runner = Runner::new(
        SimSystem::homogeneous(4, HardwareProfile::k40()),
        &dist,
        pr,
        EnactConfig::default(),
    )
    .expect("init");
    let report = runner.enact(None).expect("pagerank");
    let ranks = gather_ranks(&runner, &dist);
    println!(
        "\nPageRank converged in {} iterations ({:.2} ms simulated). Top members:",
        report.iterations,
        report.sim_time_us / 1e3
    );
    for (v, r) in top5(&ranks) {
        println!("  member {v:>6}: rank {r:.6}");
    }

    // --- Betweenness centrality: who brokers the most connections? ---
    let mut runner = Runner::new(
        SimSystem::homogeneous(4, HardwareProfile::k40()),
        &dist,
        Bc,
        EnactConfig::default(),
    )
    .expect("init");
    // Accumulate over a few sources (full BC sums over all sources).
    let sources = [0u32, 171, 4242, 9001];
    let mut centrality = vec![0.0f32; graph.n_vertices()];
    let mut total_ms = 0.0;
    for &src in &sources {
        let report = runner.enact(Some(src)).expect("bc");
        total_ms += report.sim_time_us / 1e3;
        for (acc, x) in centrality.iter_mut().zip(gather_bc(&runner, &dist)) {
            *acc += x;
        }
    }
    println!(
        "\nBetweenness (sampled over {} sources, {total_ms:.2} ms simulated). Top brokers:",
        sources.len()
    );
    for (v, c) in top5(&centrality) {
        println!("  member {v:>6}: dependency {c:.1}");
    }

    // --- Connected components: is the network one community? ---
    let mut runner = Runner::new(
        SimSystem::homogeneous(4, HardwareProfile::k40()),
        &dist,
        Cc,
        EnactConfig::default(),
    )
    .expect("init");
    let report = runner.enact(None).expect("cc");
    let comp = gather_components(&runner, &dist);
    let mut roots: Vec<usize> = comp.clone();
    roots.sort_unstable();
    roots.dedup();
    println!(
        "\nConnected components: {} component(s) in {} supersteps (paper: 2-5 for power-law)",
        roots.len(),
        report.iterations
    );
}
