//! Scaling study: where do more GPUs help?
//!
//! Runs BFS over 1–6 virtual K40s on two very different topologies:
//! a social-network analog (power-law, shallow) and a road-network analog
//! (high diameter, degree ≤ 4). Reproduces the §VII-A observation that
//! road networks "have insufficient parallelism to saturate even one GPU …
//! we observed performance decreases on multiple GPUs", while power-law
//! graphs scale.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::gen::{grid2d, preferential_attachment};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::Bfs;
use mgpu_graph_analytics::vgpu::{HardwareProfile, Interconnect, SimSystem};

/// These graphs are ~2^8 smaller than the paper's, so fixed overheads are
/// shrunk by the same factor (dimensional scaling, see DESIGN.md) — the
/// work-to-overhead ratios, and therefore the scaling shapes, match the
/// paper's testbed.
const SCALE: f64 = 256.0;

fn bfs_time_ms(graph: &Csr<u32, u64>, n_gpus: usize, src: u32) -> (f64, usize) {
    let dist = DistGraph::partition(graph, &RandomPartitioner::default(), n_gpus, Duplication::All);
    let profile = HardwareProfile::k40().with_overhead_scale(SCALE);
    let ic = Interconnect::pcie3(n_gpus, 4).with_latency_scale(SCALE);
    let system = SimSystem::new(vec![profile; n_gpus], ic).expect("sizes match");
    let mut runner =
        Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).expect("init");
    let report = runner.enact(Some(src)).expect("bfs");
    (report.sim_time_us / 1e3, report.iterations)
}

fn main() {
    let social: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(60_000, 16, 5));
    let road: Csr<u32, u64> = GraphBuilder::undirected(&grid2d(250, 250, 1.0, 5));

    println!("BFS scaling, simulated K40 node\n");
    println!(
        "{:<6} {:>18} {:>10} {:>18} {:>10}",
        "GPUs", "social (ms)", "speedup", "road (ms)", "speedup"
    );
    let (social_base, social_iters) = bfs_time_ms(&social, 1, 0);
    let (road_base, road_iters) = bfs_time_ms(&road, 1, 0);
    for n in 1..=6usize {
        let (s, _) = bfs_time_ms(&social, n, 0);
        let (r, _) = bfs_time_ms(&road, n, 0);
        println!(
            "{:<6} {:>18.2} {:>9.2}x {:>18.2} {:>9.2}x",
            n,
            s,
            social_base / s,
            r,
            road_base / r
        );
    }
    println!(
        "\nsocial: {} supersteps (shallow, wide frontiers — parallelism to spare)",
        social_iters
    );
    println!(
        "road:   {} supersteps (deep, narrow frontiers — per-iteration overhead dominates,\n\
         so extra GPUs only add synchronization cost; §VII-A)",
        road_iters
    );
}
