//! Quickstart: partition a graph over four virtual GPUs and run multi-GPU
//! BFS through the framework.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::gen::{rmat, RmatParams};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::bfs::gather_labels;
use mgpu_graph_analytics::primitives::Bfs;
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};

fn main() {
    // 1. Generate a power-law graph (R-MAT, the paper's own generator) and
    //    apply the paper's preprocessing: undirected, dedup, no self-loops.
    let coo = rmat(14, 16, RmatParams::paper(), 42);
    let graph: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    println!("graph: {} vertices, {} directed edges", graph.n_vertices(), graph.n_edges());

    // 2. Partition it across 4 virtual GPUs with the paper's default
    //    (random) partitioner and the duplicate-all strategy BFS wants.
    let dist = DistGraph::partition(&graph, &RandomPartitioner::default(), 4, Duplication::All);
    for part in &dist.parts {
        println!(
            "  GPU {}: {} owned vertices, {} local edges, border {}",
            part.gpu,
            part.n_local,
            part.n_edges(),
            part.border_total()
        );
    }

    // 3. Build a 4×K40 node and bind the unmodified BFS primitive to it.
    let system = SimSystem::homogeneous(4, HardwareProfile::k40());
    let mut runner =
        Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).expect("init");

    // 4. Traverse from vertex 0 and inspect the report.
    let report = runner.enact(Some(0)).expect("bfs");
    println!(
        "\nBFS finished in {} supersteps — simulated {:.2} ms ({:.2} GTEPS), wall {:.2} ms",
        report.iterations,
        report.sim_time_us / 1e3,
        report.gteps(graph.n_edges()),
        report.wall_time_us / 1e3
    );
    println!(
        "communication: {} vertices / {} KiB pushed between GPUs",
        report.totals.h_vertices,
        report.totals.h_bytes_sent / 1024
    );

    // 5. Gather labels back to global order and summarize depths.
    let labels = gather_labels(&runner, &dist);
    let reached = labels.iter().filter(|&&l| l != u32::MAX).count();
    let max_depth = labels.iter().filter(|&&l| l != u32::MAX).max().unwrap();
    println!("reached {} of {} vertices, max depth {}", reached, labels.len(), max_depth);
}
