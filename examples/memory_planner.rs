//! Memory planning: how big a subgraph fits on one GPU under each
//! allocation scheme?
//!
//! The §VI-B motivation made executable: worst-case allocation
//! "artificially limits the size of the subgraph we can place onto one
//! GPU, which either (a) requires us to use more GPUs … or (b) limits our
//! scalability". This example binds BFS to progressively larger graphs on
//! a single memory-capped virtual GPU and reports, per scheme, the largest
//! graph that fits — exercising the real out-of-memory error path.
//!
//! ```sh
//! cargo run --release --example memory_planner
//! ```

use mgpu_graph_analytics::core::{AllocScheme, EnactConfig, Runner};
use mgpu_graph_analytics::gen::{rmat, RmatParams};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication};
use mgpu_graph_analytics::primitives::Bfs;
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem, VgpuError};

/// Try to run BFS on a 1-GPU system with `capacity` bytes of device memory.
fn fits(graph: &Csr<u32, u64>, scheme: AllocScheme, capacity: u64) -> Result<u64, VgpuError> {
    let dist = DistGraph::build(graph, vec![0; graph.n_vertices()], 1, Duplication::All);
    let system = SimSystem::homogeneous(1, HardwareProfile::k40().with_capacity(capacity));
    let config = EnactConfig { alloc_scheme: Some(scheme), ..Default::default() };
    let mut runner = Runner::new(system, &dist, Bfs::default(), config)?;
    runner.enact(Some(0))?;
    Ok(runner.system().peak_memory_per_device())
}

fn main() {
    // A deliberately small "GPU": 64 MiB, so the experiment runs quickly.
    let capacity: u64 = 64 << 20;
    println!(
        "Largest R-MAT graph (edge factor 32) fitting a {} MiB device, per allocation scheme:\n",
        capacity >> 20
    );
    let schemes = [
        AllocScheme::Max,
        AllocScheme::Fixed { sizing_factor: 3.0 },
        AllocScheme::PreallocFusion { sizing_factor: 3.0 },
        AllocScheme::JustEnough,
    ];
    for scheme in schemes {
        let mut best: Option<(u32, usize, u64)> = None;
        for scale in 10..=22u32 {
            let graph: Csr<u32, u64> =
                GraphBuilder::undirected(&rmat(scale, 32, RmatParams::paper(), 1));
            match fits(&graph, scheme, capacity) {
                Ok(peak) => best = Some((scale, graph.n_edges(), peak)),
                Err(VgpuError::OutOfMemory { requested, live, .. }) => {
                    println!(
                        "{:<16} fits up to scale {:>2} ({:>9} edges, peak {:>5.1} MiB); scale {} OOMs \
                         (wanted {:.1} MiB more on top of {:.1} MiB)",
                        scheme.label(),
                        best.map_or(0, |b| b.0),
                        best.map_or(0, |b| b.1),
                        best.map_or(0, |b| b.2) as f64 / (1 << 20) as f64,
                        scale,
                        requested as f64 / (1 << 20) as f64,
                        live as f64 / (1 << 20) as f64,
                    );
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    println!(
        "\nShape (Fig. 3 / §VI-B): just-enough and prealloc+fusion fit the largest subgraphs;\n\
         max allocation hits the capacity wall several scales earlier."
    );
}
