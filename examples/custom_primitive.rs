//! Extending the framework: a complete custom primitive in ~80 lines.
//!
//! Implements **multi-GPU reachability with hop budget** (how many vertices
//! are within `k` hops of a set of seeds?) by writing exactly the four
//! programmer concerns of the paper's §III-B — the core iteration, the data
//! to communicate, the combiner, and the stop condition — and letting the
//! framework do all the multi-GPU work.
//!
//! ```sh
//! cargo run --release --example custom_primitive
//! ```

use mgpu_graph_analytics::core::ops;
use mgpu_graph_analytics::core::problem::MgpuProblem;
use mgpu_graph_analytics::core::{AllocScheme, CommStrategy, EnactConfig, FrontierBufs, Runner};
use mgpu_graph_analytics::gen::preferential_attachment;
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner, SubGraph};
use mgpu_graph_analytics::vgpu::{Device, DeviceArray, HardwareProfile, Result, SimSystem};

/// Multi-source, hop-bounded reachability.
struct Reachability {
    seeds: Vec<u32>,
    max_hops: usize,
}

struct ReachState {
    reached: DeviceArray<u8>,
}

impl MgpuProblem<u32, u64> for Reachability {
    type State = ReachState;
    type Msg = (); // reachability is a fact, not a value: nothing to attach

    fn name(&self) -> &'static str {
        "k-hop reachability"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::JustEnough
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<u32, u64>) -> Result<ReachState> {
        Ok(ReachState { reached: dev.alloc(sub.n_vertices())? })
    }

    fn reset(
        &self,
        _dev: &mut Device,
        sub: &SubGraph<u32, u64>,
        state: &mut ReachState,
        _src: Option<u32>,
    ) -> Result<Vec<u32>> {
        state.reached.as_mut_slice().fill(0);
        // every GPU seeds the vertices it owns
        let mine: Vec<u32> = self.seeds.iter().copied().filter(|&s| sub.is_owned(s)).collect();
        for &s in &mine {
            state.reached[s as usize] = 1;
        }
        Ok(mine)
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<u32, u64>,
        state: &mut ReachState,
        _bufs: &mut FrontierBufs<u32>,
        input: &[u32],
        _iter: usize,
    ) -> Result<Vec<u32>> {
        // The `_seq` variant accepts a plain mutable closure — the easiest
        // starting point for a custom primitive. Switch to
        // `advance_filter_fused` with an atomic functor (see the BFS
        // primitive) to run the kernel on multiple threads.
        let reached = &mut state.reached;
        ops::advance_filter_fused_seq(dev, sub, input, |_, _, d| {
            if reached[d as usize] == 0 {
                reached[d as usize] = 1;
                Some(d)
            } else {
                None
            }
        })
    }

    fn package(&self, _state: &ReachState, _v: u32) {}

    fn combine(&self, state: &mut ReachState, v: u32, _msg: &()) -> bool {
        if state.reached[v as usize] == 0 {
            state.reached[v as usize] = 1;
            true
        } else {
            false
        }
    }

    fn max_iterations(&self) -> usize {
        self.max_hops
    }
}

fn main() {
    let graph: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(50_000, 6, 11));
    let dist = DistGraph::partition(&graph, &RandomPartitioner::default(), 4, Duplication::All);

    for k in [1usize, 2, 3, 4] {
        let problem = Reachability { seeds: vec![0, 100, 20_000], max_hops: k };
        let system = SimSystem::homogeneous(4, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, problem, EnactConfig::default()).unwrap();
        let report = runner.enact(None).unwrap();
        let reached: usize = (0..graph.n_vertices())
            .filter(|&v| {
                let (gpu, local) = dist.locate(v as u32);
                runner.state(gpu).reached[local as usize] == 1
            })
            .count();
        println!(
            "within {k} hop(s) of 3 seeds: {reached:>6} of {} vertices  ({} supersteps, {:.2} ms simulated)",
            graph.n_vertices(),
            report.iterations,
            report.sim_ms()
        );
    }
}
