//! Profile a multi-GPU BFS and export a Chrome trace.
//!
//! Enables the per-device timeline profiler, runs BFS over 4 virtual GPUs,
//! and writes `target/bfs_trace.json` — load it in `chrome://tracing` or
//! https://ui.perfetto.dev to see each device's compute stream, its
//! communication stream, and the computation/communication overlap the
//! framework gets from its cudaStreamWaitEvent-style scheduling.
//!
//! ```sh
//! cargo run --release --example profile_trace
//! ```

use mgpu_graph_analytics::core::{EnactConfig, Runner};
use mgpu_graph_analytics::gen::{rmat, RmatParams};
use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_graph_analytics::primitives::Bfs;
use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem, Timeline};

fn main() {
    let graph: Csr<u32, u64> = GraphBuilder::undirected(&rmat(14, 16, RmatParams::paper(), 11));
    let dist = DistGraph::partition(&graph, &RandomPartitioner::default(), 4, Duplication::All);

    let mut system = SimSystem::homogeneous(4, HardwareProfile::k40());
    for dev in &mut system.devices {
        dev.timeline.enable();
    }

    let mut runner =
        Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).expect("init");
    let report = runner.enact(Some(0)).expect("bfs");

    let timelines: Vec<&Timeline> = runner.system().devices.iter().map(|d| &d.timeline).collect();
    let total_spans: usize = timelines.iter().map(|t| t.events().len()).sum();
    let json = Timeline::chrome_trace(timelines);
    let path = "target/bfs_trace.json";
    std::fs::write(path, &json).expect("write trace");

    println!(
        "BFS: {} supersteps, {:.2} ms simulated across 4 GPUs",
        report.iterations,
        report.sim_time_us / 1e3
    );
    println!("wrote {total_spans} spans to {path} ({} bytes)", json.len());
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load the file;");
    println!("pid = device, tid 0 = compute stream, tid 1 = communication stream.");

    // A taste of the schedule without leaving the terminal: per-kernel-kind
    // occupancy on device 0.
    let dev0 = &runner.system().devices[0].timeline;
    let mut by_name: std::collections::BTreeMap<&str, (usize, f64)> = Default::default();
    for e in dev0.events() {
        let entry = by_name.entry(e.name).or_default();
        entry.0 += 1;
        entry.1 += e.dur_us;
    }
    println!("\ndevice 0 span summary:");
    for (name, (count, us)) in by_name {
        println!("  {name:<16} x{count:<4} {us:>9.1} µs");
    }
}
